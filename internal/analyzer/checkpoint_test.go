package analyzer

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"saad/internal/logpoint"
	"saad/internal/synopsis"
	"saad/internal/vtime"
)

// mixedDetectStream builds a detection stream with healthy traffic plus
// injected anomalies (a new signature burst and a latency burst) spread
// across several windows.
func mixedDetectStream() []*synopsis.Synopsis {
	rng := vtime.NewRNG(99)
	var syns []*synopsis.Synopsis
	ts := epoch
	for i := 0; i < 8000; i++ {
		dur := 9*time.Millisecond + time.Duration(rng.Intn(int(2*time.Millisecond)))
		pts := []logpoint.ID{1, 2, 4, 5}
		switch {
		case i >= 3000 && i < 3300:
			// Premature exits: a flow never seen in training.
			pts = []logpoint.ID{1}
			dur = time.Millisecond
		case i >= 5000 && i < 5600:
			// Latency burst on the dominant flow.
			dur = 40 * time.Millisecond
		case i%250 == 0:
			pts = []logpoint.ID{1, 2, 3, 4, 5}
		}
		syns = append(syns, makeSyn(1, 1, ts, dur, pts...))
		ts = ts.Add(time.Millisecond)
	}
	return syns
}

// anomalySummary reduces an anomaly to a comparable string: everything that
// matters for equivalence except the example pointers.
func anomalySummary(a Anomaly) string {
	ids := make([]uint64, 0, len(a.Examples))
	for _, e := range a.Examples {
		ids = append(ids, e.TaskID)
	}
	return fmt.Sprintf("%s sig=%x test=%+v examples=%v", a.String(), a.Signature, a.Test, ids)
}

func summarize(anomalies []Anomaly) []string {
	out := make([]string, 0, len(anomalies))
	for _, a := range anomalies {
		out = append(out, anomalySummary(a))
	}
	return out
}

// TestCheckpointRestartEquivalence is the acceptance property: a detector
// checkpointed mid-stream (inside an open window, with anomalies already
// behind it) and restored in a fresh process-equivalent must report exactly
// the same anomalies and window history as one that never stopped.
func TestCheckpointRestartEquivalence(t *testing.T) {
	model := trainedModel(t)
	stream := mixedDetectStream()
	// Split mid-stream, deliberately inside the new-signature burst so the
	// open window carries live outlier evidence across the restart.
	cut := 3150

	uninterrupted := NewDetector(model)
	want := feedAll(uninterrupted, stream)

	first := NewDetector(model)
	var got []Anomaly
	for _, s := range stream[:cut] {
		got = append(got, first.Feed(s)...)
	}
	var buf bytes.Buffer
	if _, err := first.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stream[cut:] {
		got = append(got, restored.Feed(s)...)
	}
	got = append(got, restored.Flush()...)

	if len(want) == 0 {
		t.Fatal("stream produced no anomalies; the equivalence check is vacuous")
	}
	if w, g := summarize(want), summarize(got); !reflect.DeepEqual(w, g) {
		t.Fatalf("anomalies diverged after restart:\nuninterrupted: %v\nrestarted:     %v", w, g)
	}
	if w, g := uninterrupted.WindowHistory(), restored.WindowHistory(); !reflect.DeepEqual(w, g) {
		t.Fatalf("window history diverged after restart:\nuninterrupted: %+v\nrestarted:     %+v", w, g)
	}
}

// TestCheckpointIsNonDestructive: the checkpointed detector keeps working
// and agrees with its own restored copy.
func TestCheckpointIsNonDestructive(t *testing.T) {
	model := trainedModel(t)
	stream := mixedDetectStream()
	det := NewDetector(model)
	var before []Anomaly
	for _, s := range stream[:4000] {
		before = append(before, det.Feed(s)...)
	}
	var buf bytes.Buffer
	if _, err := det.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var a, b []Anomaly
	for _, s := range stream[4000:] {
		a = append(a, det.Feed(s)...)
		b = append(b, restored.Feed(s)...)
	}
	a = append(a, det.Flush()...)
	b = append(b, restored.Flush()...)
	if !reflect.DeepEqual(summarize(a), summarize(b)) {
		t.Fatalf("original and restored detectors diverged:\noriginal: %v\nrestored: %v", summarize(a), summarize(b))
	}
}

func TestCheckpointFileAtomicWriteAndLoad(t *testing.T) {
	model := trainedModel(t)
	det := NewDetector(model)
	for _, s := range mixedDetectStream()[:3200] {
		det.Feed(s)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "analyzer.ckpt")
	for i := 0; i < 2; i++ { // second write exercises the overwrite path
		if err := det.WriteCheckpointFile(path); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "analyzer.ckpt" {
		t.Fatalf("temp files left behind: %v", entries)
	}
	restored, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(restored.open), len(det.open); got != want {
		t.Fatalf("restored %d open windows, want %d", got, want)
	}
	if !reflect.DeepEqual(restored.WindowHistory(), det.WindowHistory()) {
		t.Fatal("restored window history differs")
	}
}

func TestCheckpointRejectsBadInput(t *testing.T) {
	if _, err := ReadCheckpoint(strings.NewReader("{garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadCheckpoint(strings.NewReader(`{"version": 999, "model": {}}`)); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch not rejected: %v", err)
	}
	if _, err := LoadCheckpointFile(filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Fatal("missing file accepted")
	}
	// A checkpoint with a corrupt example record must fail, not silently
	// drop evidence.
	bad := `{"version": 1, "model": {"config": {"flowPercentile": 99, "durationPercentile": 99,
	  "alpha": 0.001, "kFolds": 5, "discardFactor": 3, "minTasksPerSignature": 20,
	  "windowMillis": 60000, "useTTest": true, "maxExamples": 3, "minEffect": 0.02},
	  "trainedOn": 1, "stages": []},
	  "windows": [{"host": 1, "stage": 1, "startUnixNs": 0, "tasks": 1, "flowOutliers": 1,
	    "newSigs": [{"signature": "01", "count": 1, "examples": ["zz"]}]}]}`
	if _, err := ReadCheckpoint(strings.NewReader(bad)); err == nil {
		t.Fatal("corrupt example record accepted")
	}
}

// TestCheckpointTimePrecision: window starts survive the round trip at
// nanosecond precision even off the codec's microsecond grid.
func TestCheckpointTimePrecision(t *testing.T) {
	model := trainedModel(t)
	det := NewDetector(model)
	odd := epoch.Add(1234567 * time.Nanosecond)
	det.Feed(makeSyn(1, 1, odd, 10*time.Millisecond, 1, 2, 4, 5))
	var buf bytes.Buffer
	if _, err := det.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	key := groupKey{host: 1, stage: 1}
	a, b := det.open[key], restored.open[key]
	if a == nil || b == nil {
		t.Fatal("open window missing")
	}
	if !a.start.Equal(b.start) {
		t.Fatalf("window start drifted: %v vs %v", a.start, b.start)
	}
}
