package analyzer

import (
	"testing"
	"time"

	"saad/internal/metrics"
	"saad/internal/synopsis"
	"saad/internal/trace"
)

// tracedDetectStream is a short healthy stream where every synopsis carries
// a span stamped as if it had just crossed the wire.
func tracedDetectStream(n int) []*synopsis.Synopsis {
	ts := epoch
	var syns []*synopsis.Synopsis
	for i := 0; i < n; i++ {
		s := makeSyn(1, 1, ts, 10*time.Millisecond, 1, 2, 4, 5)
		now := time.Now().UnixNano()
		s.Trace = &trace.Span{
			Stage: 1, Host: 1, TaskID: s.TaskID,
			Emit: now - 3000, Send: now - 2000, Recv: now - 1000,
		}
		ts = ts.Add(30 * time.Millisecond)
		syns = append(syns, s)
	}
	return syns
}

func TestEngineCompletesSpansAndRecordsFlight(t *testing.T) {
	model := trainedModel(t)
	reg := metrics.NewRegistry()
	tr := trace.New(trace.Config{SampleEvery: 1, RingCapacity: 8192})
	e := NewEngine(model,
		WithShards(2),
		WithEngineMetrics(metrics.NewPipeline(reg).Analyzer),
		WithEngineTracer(tr))
	defer e.Close()

	// Two windows' worth of traffic so at least one window closes.
	stream := tracedDetectStream(4000)
	for _, s := range stream {
		e.Feed(s)
	}
	e.Drain()

	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("tracer retained no completed spans")
	}
	for _, sp := range spans {
		if !sp.Complete() {
			t.Fatalf("span incomplete after engine pass: %+v", sp)
		}
		if sp.Enqueue < sp.Recv || sp.Detect < sp.Enqueue || sp.Done < sp.Detect {
			t.Fatalf("engine stamps not monotonic: %+v", sp)
		}
		if sp.Total() <= 0 {
			t.Fatalf("completed span has non-positive total: %+v", sp)
		}
	}

	// The detection-latency histogram observed every completed span.
	snap := reg.Snapshot()
	h, ok := snap.Histograms[`saad_detection_latency_seconds{stage="1"}`]
	if !ok {
		t.Fatalf("detection latency series missing; histograms: %v", keysOf(snap.Histograms))
	}
	if h.Count != uint64(len(stream)) {
		t.Fatalf("histogram count = %d, want %d (one per sampled synopsis)", h.Count, len(stream))
	}

	// The flight recorder saw the traffic: synopsis events plus at least one
	// window_open and one window_close.
	events := tr.FlightSnapshot(16384)
	if len(events) == 0 {
		t.Fatal("flight snapshot empty after feeding traffic")
	}
	kinds := map[trace.EventKind]int{}
	for i, ev := range events {
		kinds[ev.Kind]++
		if i > 0 && events[i-1].Nanos < ev.Nanos {
			// Snapshot is newest-first; tolerate equal stamps.
			t.Fatalf("flight snapshot out of order at %d: %d then %d", i, events[i-1].Nanos, ev.Nanos)
		}
	}
	if kinds[trace.EventSynopsis] == 0 {
		t.Fatalf("no synopsis events in flight snapshot: %v", kinds)
	}
	if kinds[trace.EventWindowOpen] == 0 || kinds[trace.EventWindowClose] == 0 {
		t.Fatalf("window lifecycle missing from flight snapshot: %v", kinds)
	}
}

func keysOf[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestEngineSwapRecordsFlightEvent(t *testing.T) {
	tr := trace.New(trace.Config{SampleEvery: 1})
	e := NewEngine(trainedModel(t), WithShards(1), WithEngineTracer(tr))
	defer e.Close()

	for _, s := range tracedDetectStream(50) {
		e.Feed(s)
	}
	e.SwapModel(trainedModelB(t))
	for _, s := range tracedDetectStream(50) {
		e.Feed(s)
	}
	e.Drain()

	var swaps int
	for _, ev := range tr.FlightSnapshot(1024) {
		if ev.Kind == trace.EventModelSwap {
			swaps++
		}
	}
	if swaps == 0 {
		t.Fatal("model swap left no flight-recorder event")
	}
	// Spans fed after the swap still complete against the fresh shards.
	for _, sp := range tr.Spans() {
		if sp.Done == 0 {
			t.Fatalf("span not completed after swap: %+v", sp)
		}
	}
}

func TestEngineLateSynopsisRecordsDrop(t *testing.T) {
	tr := trace.New(trace.Config{SampleEvery: 1})
	e := NewEngine(trainedModel(t), WithShards(1), WithEngineTracer(tr))
	defer e.Close()

	ts := epoch
	for i := 0; i < 200; i++ {
		e.Feed(makeSyn(1, 1, ts, 10*time.Millisecond, 1, 2, 4, 5))
		ts = ts.Add(time.Second)
	}
	// A straggler two windows behind the group's watermark.
	e.Feed(makeSyn(1, 1, epoch.Add(-2*time.Minute), 10*time.Millisecond, 1, 2, 4, 5))
	e.Drain()

	if e.LateSynopses() == 0 {
		t.Skip("straggler not classified late by this config")
	}
	var drops int
	for _, ev := range tr.FlightSnapshot(2048) {
		if ev.Kind == trace.EventLateDrop {
			drops++
			if ev.Stage != 1 || ev.Host != 1 {
				t.Fatalf("late-drop event has wrong identity: %+v", ev)
			}
		}
	}
	if drops == 0 {
		t.Fatal("late synopsis left no flight-recorder event")
	}
}

// TestEngineUntracedFeedKeepsWorking pins the common path: with a tracer
// attached but no spans on the synopses, detection runs normally and the
// tracer retains nothing.
func TestEngineUntracedFeedKeepsWorking(t *testing.T) {
	tr := trace.New(trace.Config{SampleEvery: 1})
	e := NewEngine(trainedModel(t), WithShards(2), WithEngineTracer(tr))
	defer e.Close()
	ts := epoch
	for i := 0; i < 500; i++ {
		e.Feed(makeSyn(1, 1, ts, 10*time.Millisecond, 1, 2, 4, 5))
		ts = ts.Add(30 * time.Millisecond)
	}
	e.Drain()
	if got := tr.Spans(); len(got) != 0 {
		t.Fatalf("tracer retained %d spans from untraced traffic", len(got))
	}
	if e.Fed() != 500 {
		t.Fatalf("fed = %d, want 500", e.Fed())
	}
}
