package analyzer

import (
	"io"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"saad/internal/logpoint"
	"saad/internal/metrics"
	"saad/internal/synopsis"
	"saad/internal/trace"
)

// Engine is the sharded concurrent analyzer: it routes synopses across N
// shard workers by hashing the (host, stage) group key, each worker owning
// a private single-threaded Detector core. Because a group lives wholly on
// one shard and each shard consumes its bounded queue in FIFO order, every
// window sees exactly the synopses — in exactly the order — a single
// Detector would have seen, so detection semantics are bit-identical; the
// merge step sorts anomalies and window history into a canonical order so
// output is reproducible regardless of shard interleaving.
//
// Concurrency contract: Feed, FeedBatch and Emit are safe from any number
// of goroutines. The control-plane methods (Model, SwapModel, Drain, Flush,
// WindowHistory, PendingTasks, LateSynopses, ShardStats, WriteCheckpoint,
// Close) serialize on an internal mutex, so they too are safe from any
// goroutine — an auto-promoted SwapModel from a stream handler cannot
// interleave with a checkpoint tick. Quiescent ones (Flush, Close) should
// still run only after feeders have stopped or between their calls — the
// engine briefly parks every shard, so a concurrent feeder would only
// block, not corrupt, but the snapshot would be ambiguous.
type Engine struct {
	// ctl serializes the control-plane methods against each other; model is
	// only read or written with ctl held (the shard data path never touches
	// it — each core holds its own reference).
	ctl    sync.Mutex
	model  *Model
	shards []*shard
	mask   uint32 // len(shards)-1 when power of two, else 0 and mod is used
	closed atomic.Bool

	// fed counts synopses accepted by Feed/FeedBatch/Emit across shards;
	// with admission control on, shed synopses are excluded (they count in
	// shed instead, so fed + shed = offered).
	fed atomic.Uint64

	// Admission control (see admission.go). admOn gates the whole feature
	// with one branch on the hot path; admHigh/admLow are the config's
	// water marks precomputed as absolute queue depths.
	admOn           bool
	admCfg          AdmissionConfig
	admHigh, admLow int
	degraded        atomic.Int64  // shards currently degraded
	shed            atomic.Uint64 // synopses shed engine-wide

	// anomalies buffers what closed windows emitted between Drain calls,
	// collected under quiesce so no lock is needed.
	anomalies []Anomaly

	sink   func([]Anomaly)
	m      *metrics.AnalyzerMetrics
	tracer *trace.Tracer

	// release, when set, is called exactly once for every synopsis the
	// engine is done with — after its shard observed it, or immediately
	// when admission control sheds it. Cores run in clone-on-retain mode
	// so no example kept for an anomaly report aliases a released (and
	// possibly recycled) synopsis.
	release func(*synopsis.Synopsis)
	// releaseBatch, when set, replaces per-record release for whole batch
	// messages: one call recycles the batch under a single free-list lock.
	releaseBatch func([]*synopsis.Synopsis)

	queueCap int
}

// shard is one worker: a bounded FIFO queue in front of a private core.
type shard struct {
	ch   chan shardMsg
	core *Detector // owned by the worker goroutine between control ops
	done chan struct{}

	// out accumulates anomalies emitted by the core between drains; only
	// the worker goroutine appends, only control fns (on-worker) consume.
	out []Anomaly
	// nfed counts synopses the core consumed (worker-goroutine-owned; read
	// under quiesce).
	nfed uint64

	fed       *metrics.Counter
	busy      *metrics.Counter
	overflows *metrics.Counter
	depth     *metrics.Gauge

	// flight is the shard's flight-recorder ring (nil when tracing is off);
	// the worker goroutine records sampled arrivals, the core records window
	// opens/closes and late drops.
	flight *trace.FlightRing

	// adm is the shard's admission-control state (inert unless the engine
	// was built WithAdmission).
	adm admissionState
}

// shardMsg carries either synopses or a control function through the same
// FIFO channel; a control function therefore runs after everything queued
// before it, with exclusive access to the shard's core.
type shardMsg struct {
	syn   *synopsis.Synopsis
	batch []*synopsis.Synopsis
	cmd   func(core *Detector)
	done  chan<- struct{}
}

// EngineOption configures NewEngine.
type EngineOption func(*engineOptions)

type engineOptions struct {
	shards    int
	queueCap  int
	metrics   *metrics.AnalyzerMetrics
	sink      func([]Anomaly)
	tracer    *trace.Tracer
	admission    *AdmissionConfig
	release      func(*synopsis.Synopsis)
	releaseBatch func([]*synopsis.Synopsis)
}

// WithShards sets the shard count; n < 1 selects GOMAXPROCS.
func WithShards(n int) EngineOption {
	return func(o *engineOptions) { o.shards = n }
}

// WithShardQueue sets each shard's queue capacity (default 1024). A feeder
// hitting a full queue blocks (backpressure) and the overflow counter
// increments.
func WithShardQueue(n int) EngineOption {
	return func(o *engineOptions) { o.queueCap = n }
}

// WithEngineMetrics attaches a metrics bundle: shared detector families
// plus the per-shard queue depth, busy time, throughput and overflow
// series.
func WithEngineMetrics(m *metrics.AnalyzerMetrics) EngineOption {
	return func(o *engineOptions) { o.metrics = m }
}

// WithAnomalySink routes every anomaly batch a closed window produces to
// fn, called from shard worker goroutines (fn must be safe for concurrent
// use). Without a sink, anomalies buffer inside the engine until Drain or
// Flush. With a sink they are delivered immediately — in the shard's
// deterministic per-window order — and Drain returns nothing.
func WithAnomalySink(fn func([]Anomaly)) EngineOption {
	return func(o *engineOptions) { o.sink = fn }
}

// WithEngineTracer attaches pipeline tracing: sampled synopsis spans get
// their Enqueue/Detect/Done stamps and are published to the tracer on
// completion, and each shard records flight-recorder events (arrivals,
// window opens/closes, late drops, model swaps) to its ring. A nil tracer
// (the default) reduces every touch point to one nil check.
func WithEngineTracer(t *trace.Tracer) EngineOption {
	return func(o *engineOptions) { o.tracer = t }
}

// WithSynopsisRelease registers fn as the engine's synopsis free-list hook
// (typically synopsis.Pool.Put): it is called exactly once per fed synopsis
// — on the shard worker after the core observed it, or inline on the feeder
// when admission control sheds it — so a zero-allocation receive path can
// recycle record structs. The engine automatically switches its detector
// cores to clone-on-retain: any synopsis kept as an anomaly example is
// deep-copied first, so recycling can never corrupt a report.
func WithSynopsisRelease(fn func(*synopsis.Synopsis)) EngineOption {
	return func(o *engineOptions) { o.release = fn }
}

// WithSynopsisReleaseBatch registers fn (typically synopsis.Pool.PutN) as
// the bulk variant of the release hook: whole batch messages are recycled
// with one call instead of one per record, so free-list synchronization
// amortizes across the batch. Use it alongside WithSynopsisRelease, which
// still covers single-record feeds and admission sheds; the exactly-once
// contract is unchanged — every fed synopsis reaches exactly one hook.
func WithSynopsisReleaseBatch(fn func([]*synopsis.Synopsis)) EngineOption {
	return func(o *engineOptions) { o.releaseBatch = fn }
}

// NewEngine returns a running engine for the trained model. The model must
// not be mutated afterwards (its interning index is shared read-only by
// every shard).
func NewEngine(model *Model, opts ...EngineOption) *Engine {
	e, _ := newEngine(model, opts...)
	return e
}

func newEngine(model *Model, opts ...EngineOption) (*Engine, *engineOptions) {
	o := engineOptions{queueCap: 1024}
	for _, opt := range opts {
		opt(&o)
	}
	if o.shards < 1 {
		o.shards = runtime.GOMAXPROCS(0)
	}
	if o.queueCap < 1 {
		o.queueCap = 1
	}
	e := &Engine{
		model:    model,
		shards:   make([]*shard, o.shards),
		sink:     o.sink,
		m:        o.metrics,
		tracer:   o.tracer,
		release:  o.release,
		queueCap: o.queueCap,
	}
	e.releaseBatch = o.releaseBatch
	if e.release == nil && e.releaseBatch != nil {
		// Keep the exactly-once contract for single-record feeds and
		// admission sheds even when only the bulk hook was given.
		rb := e.releaseBatch
		one := make([]*synopsis.Synopsis, 1)
		var mu sync.Mutex
		e.release = func(s *synopsis.Synopsis) {
			mu.Lock()
			one[0] = s
			rb(one)
			mu.Unlock()
		}
	}
	if o.shards&(o.shards-1) == 0 {
		e.mask = uint32(o.shards - 1)
	}
	if o.admission != nil {
		e.admOn = true
		e.admCfg = *o.admission
		e.admHigh = int(e.admCfg.HighWater * float64(o.queueCap))
		if e.admHigh < 1 {
			e.admHigh = 1
		}
		e.admLow = int(e.admCfg.LowWater * float64(o.queueCap))
	}
	for i := range e.shards {
		sh := &shard{
			ch:   make(chan shardMsg, o.queueCap),
			core: NewDetector(model),
			done: make(chan struct{}),
		}
		if m := o.metrics; m != nil {
			label := strconv.Itoa(i)
			sh.fed = m.ShardSynopses.With(label)
			sh.busy = m.ShardBusyNanos.With(label)
			sh.overflows = m.ShardOverflows.With(label)
			sh.depth = m.ShardQueueDepth.With(label)
			sh.core.SetMetrics(m)
		}
		if t := o.tracer; t != nil {
			sh.flight = t.ShardRing(i)
			sh.core.SetFlight(sh.flight)
		}
		if e.release != nil || e.releaseBatch != nil {
			sh.core.SetRetainCopy(true)
		}
		e.shards[i] = sh
		go e.run(sh)
	}
	return e, &o
}

// run is the shard worker loop: it owns the core until the channel closes.
//
//saad:hotpath
func (e *Engine) run(sh *shard) {
	defer close(sh.done)
	timed := sh.busy != nil
	for msg := range sh.ch {
		var start time.Time
		if timed {
			// Wall-clock reads happen only when shard_busy_nanos metrics
			// are enabled, and measure real elapsed time by design.
			start = time.Now() //saad:allow hotpathcheck metrics-gated busy-time measurement wants wall clock
		}
		switch {
		case msg.syn != nil:
			sh.observe(e, msg.syn)
			if e.release != nil {
				e.release(msg.syn)
			}
		case msg.batch != nil:
			if e.releaseBatch != nil {
				for _, s := range msg.batch {
					sh.observe(e, s)
				}
				e.releaseBatch(msg.batch)
			} else {
				for _, s := range msg.batch {
					sh.observe(e, s)
					if e.release != nil {
						e.release(s)
					}
				}
			}
		case msg.cmd != nil:
			msg.cmd(sh.core)
		}
		if timed {
			sh.busy.Add(uint64(time.Since(start)))
			sh.depth.Set(float64(len(sh.ch)))
		}
		if msg.done != nil {
			msg.done <- struct{}{}
		}
	}
}

//saad:hotpath
func (sh *shard) observe(e *Engine, s *synopsis.Synopsis) {
	sh.nfed++
	sh.fed.Inc()
	if sp := s.Trace; sp != nil {
		sp.Detect = time.Now().UnixNano()
	}
	if out := sh.core.Feed(s); len(out) > 0 {
		if e.sink != nil {
			e.sink(out)
		} else {
			sh.out = append(sh.out, out...)
		}
	}
	if sp := s.Trace; sp != nil {
		e.traceDone(sh, sp)
	}
}

// traceDone finishes a sampled span after the detector's verdict: it stamps
// Done, records the arrival in the shard's flight ring, publishes the span
// (now immutable) to the tracer, and observes the end-to-end detection
// latency histogram for the span's stage. It runs on the shard worker
// goroutine and is deliberately not a hot-path function: it executes once
// per SAMPLED synopsis, so wall-clock reads and the label lookup are off
// the unsampled fast path entirely.
func (e *Engine) traceDone(sh *shard, sp *trace.Span) {
	sp.Done = time.Now().UnixNano()
	sh.flight.Record(trace.EventSynopsis, sp.Stage, sp.Host, sp.TaskID, uint64(sp.QueueWait()))
	e.tracer.SpanDone(sp)
	if m := e.m; m != nil && m.DetectionLatency != nil {
		if total := sp.Total(); total > 0 {
			m.DetectionLatency.With(strconv.Itoa(int(sp.Stage))).Observe(float64(total) / 1e9)
		}
	}
}

// shardFor hashes the (host, stage) group key to a shard. Any group maps
// to exactly one shard, preserving per-group FIFO order.
func (e *Engine) shardFor(s *synopsis.Synopsis) *shard {
	return e.shards[e.shardIndex(s.Host, s.Stage)]
}

// shardIndex is the routing hash (a Fibonacci/murmur-style mix of the two
// key halves): checkpoint adoption must partition state with exactly the
// same function that routes live synopses.
//
//saad:hotpath
func (e *Engine) shardIndex(host uint16, stage logpoint.StageID) int {
	h := (uint32(host)+1)*0x9E3779B1 ^ (uint32(stage)+1)*0x85EBCA77
	h ^= h >> 16
	if e.mask != 0 || len(e.shards) == 1 {
		return int(h & e.mask)
	}
	return int(h % uint32(len(e.shards)))
}

// send enqueues with backpressure: a full queue blocks the feeder and is
// counted as an overflow (the signal to raise -shards or the queue size).
func (e *Engine) send(sh *shard, msg shardMsg) {
	select {
	case sh.ch <- msg:
	default:
		sh.overflows.Inc()
		sh.ch <- msg
	}
	if sh.depth != nil {
		sh.depth.Set(float64(len(sh.ch)))
	}
}

// Feed routes one synopsis to its shard. Safe for concurrent use. Unlike
// Detector.Feed it returns nothing: anomalies surface via Drain, Flush, or
// the WithAnomalySink callback. With admission control on, a synopsis
// arriving at a degraded shard may be shed instead of queued (see
// admission.go).
//
//saad:hotpath
func (e *Engine) Feed(s *synopsis.Synopsis) {
	sh := e.shardFor(s)
	if e.admOn && !e.admit(sh) {
		if e.release != nil {
			e.release(s)
		}
		return
	}
	e.fed.Add(1)
	if sp := s.Trace; sp != nil {
		sp.Enqueue = time.Now().UnixNano()
	}
	e.send(sh, shardMsg{syn: s})
}

// FeedBatch routes a batch, partitioning it per shard with stable order so
// per-group FIFO is preserved while channel operations amortize.
func (e *Engine) FeedBatch(batch []*synopsis.Synopsis) {
	if len(batch) == 0 {
		return
	}
	if e.admOn {
		e.feedBatchAdmit(batch)
		return
	}
	e.fed.Add(uint64(len(batch)))
	var now int64
	for _, s := range batch {
		if sp := s.Trace; sp != nil {
			if now == 0 {
				now = time.Now().UnixNano()
			}
			sp.Enqueue = now
		}
	}
	if len(e.shards) == 1 {
		e.send(e.shards[0], shardMsg{batch: batch})
		return
	}
	parts := make(map[*shard][]*synopsis.Synopsis, len(e.shards))
	for _, s := range batch {
		sh := e.shardFor(s)
		parts[sh] = append(parts[sh], s)
	}
	for _, sh := range e.shards { // deterministic shard order
		if part := parts[sh]; part != nil {
			e.send(sh, shardMsg{batch: part})
		}
	}
}

// feedBatchAdmit is FeedBatch with per-synopsis admission: each element is
// admitted or shed against its shard's state in batch order (never the
// caller's slice mutated), so the kept subsequence preserves per-group
// FIFO.
func (e *Engine) feedBatchAdmit(batch []*synopsis.Synopsis) {
	var now int64
	stamp := func(s *synopsis.Synopsis) {
		e.fed.Add(1)
		if sp := s.Trace; sp != nil {
			if now == 0 {
				now = time.Now().UnixNano()
			}
			sp.Enqueue = now
		}
	}
	if len(e.shards) == 1 {
		sh := e.shards[0]
		kept := make([]*synopsis.Synopsis, 0, len(batch))
		for _, s := range batch {
			if !e.admit(sh) {
				if e.release != nil {
					e.release(s)
				}
				continue
			}
			stamp(s)
			kept = append(kept, s)
		}
		if len(kept) > 0 {
			e.send(sh, shardMsg{batch: kept})
		}
		return
	}
	parts := make(map[*shard][]*synopsis.Synopsis, len(e.shards))
	for _, s := range batch {
		sh := e.shardFor(s)
		if !e.admit(sh) {
			if e.release != nil {
				e.release(s)
			}
			continue
		}
		stamp(s)
		parts[sh] = append(parts[sh], s)
	}
	for _, sh := range e.shards { // deterministic shard order
		if part := parts[sh]; part != nil {
			e.send(sh, shardMsg{batch: part})
		}
	}
}

// Emit implements tracker.Sink, so the engine can terminate any synopsis
// transport directly — each TCP connection handler feeds it concurrently.
func (e *Engine) Emit(s *synopsis.Synopsis) { e.Feed(s) }

// EmitBatch implements stream.BatchSink: a v2 TCP connection hands each
// decoded frame over in one call, so the engine's per-shard partitioning
// and channel sends amortize across the whole frame. Ownership of the
// slice and its synopses passes to the engine.
func (e *Engine) EmitBatch(batch []*synopsis.Synopsis) { e.FeedBatch(batch) }

// Fed returns how many synopses the engine accepted.
func (e *Engine) Fed() uint64 { return e.fed.Load() }

// Closed reports whether Close has been called. Feeding a closed engine
// panics; the inspection methods keep working (inline on the caller).
func (e *Engine) Closed() bool { return e.closed.Load() }

// Shards returns the shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// Model returns a deep copy of the trained model every shard currently
// serves (defensive, like Detector.Model: the live model's interning index
// is shared read-only across shards and must never be mutated). Safe for
// concurrent use — SwapModel replaces the model under the same control
// mutex.
func (e *Engine) Model() *Model {
	e.ctl.Lock()
	defer e.ctl.Unlock()
	return e.model.Clone()
}

// quiesce runs fn against every shard's core with the shard parked: the
// control message traverses the same FIFO queue as data, so fn observes
// everything enqueued before the quiesce began. After Close, cores are
// owned by no goroutine and fn runs inline.
//
// fn runs on the shard WORKER goroutines, concurrently across shards:
// callers must only write per-shard slots (index i), never append to or
// sum into shared state inside fn — merge after quiesce returns.
func (e *Engine) quiesce(fn func(i int, sh *shard)) {
	if e.closed.Load() {
		for i, sh := range e.shards {
			fn(i, sh)
		}
		return
	}
	done := make(chan struct{}, len(e.shards))
	for i, sh := range e.shards {
		i, sh := i, sh
		// Blocking send, not e.send: a control message on a full queue is
		// backpressure by design, not a feed overflow worth counting.
		sh.ch <- shardMsg{cmd: func(*Detector) { fn(i, sh) }, done: done}
	}
	for range e.shards {
		<-done
	}
}

// takeBuffered collects (and clears) every shard's buffered anomalies under
// quiesce.
func (e *Engine) takeBuffered() []Anomaly {
	parts := make([][]Anomaly, len(e.shards))
	e.quiesce(func(i int, sh *shard) {
		parts[i] = sh.out
		sh.out = nil
	})
	var out []Anomaly
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Drain processes everything queued so far and returns the anomalies
// buffered since the last Drain/Flush, in canonical order. With an anomaly
// sink attached it still acts as a barrier (all queued synopses observed)
// but returns nil.
func (e *Engine) Drain() []Anomaly {
	e.ctl.Lock()
	defer e.ctl.Unlock()
	out := e.takeBuffered()
	sortAnomalies(out)
	return out
}

// Flush closes all open windows on every shard and returns their anomalies
// together with any buffered ones, in canonical order. Call at end of
// stream. With an anomaly sink attached, flush anomalies go to the sink.
func (e *Engine) Flush() []Anomaly {
	e.ctl.Lock()
	defer e.ctl.Unlock()
	parts := make([][]Anomaly, len(e.shards))
	e.quiesce(func(i int, sh *shard) {
		part := sh.out
		sh.out = nil
		if fl := sh.core.Flush(); len(fl) > 0 {
			if e.sink != nil {
				e.sink(fl)
			} else {
				part = append(part, fl...)
			}
		}
		parts[i] = part
	})
	var out []Anomaly
	for _, p := range parts {
		out = append(out, p...)
	}
	sortAnomalies(out)
	return out
}

// WindowHistory returns the merged closed-window statistics of every
// shard, sorted by host, stage, then window start.
func (e *Engine) WindowHistory() []WindowStats {
	e.ctl.Lock()
	defer e.ctl.Unlock()
	parts := make([][]WindowStats, len(e.shards))
	e.quiesce(func(i int, sh *shard) {
		parts[i] = sh.core.stats
	})
	var out []WindowStats
	for _, p := range parts {
		out = append(out, p...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Host != b.Host {
			return a.Host < b.Host
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		return a.Window.Before(b.Window)
	})
	return out
}

// PendingTasks sums tasks in still-open windows across shards.
func (e *Engine) PendingTasks() int {
	e.ctl.Lock()
	defer e.ctl.Unlock()
	counts := make([]int, len(e.shards))
	e.quiesce(func(i int, sh *shard) { counts[i] = sh.core.PendingTasks() })
	n := 0
	for _, c := range counts {
		n += c
	}
	return n
}

// LateSynopses sums dropped late arrivals across shards.
func (e *Engine) LateSynopses() uint64 {
	e.ctl.Lock()
	defer e.ctl.Unlock()
	counts := make([]uint64, len(e.shards))
	e.quiesce(func(i int, sh *shard) { counts[i] = sh.core.late })
	var n uint64
	for _, c := range counts {
		n += c
	}
	return n
}

// ShardStat is one shard's live load snapshot for heartbeats.
type ShardStat struct {
	Shard    int
	QueueLen int
	QueueCap int
	// Fed is the number of synopses the shard's core consumed.
	Fed uint64
	// Pending is the shard's open-window task count.
	Pending int
	// Degraded reports whether admission control is currently shedding on
	// this shard.
	Degraded bool
}

// ShardStats snapshots per-shard load under quiesce.
func (e *Engine) ShardStats() []ShardStat {
	e.ctl.Lock()
	defer e.ctl.Unlock()
	out := make([]ShardStat, len(e.shards))
	e.quiesce(func(i int, sh *shard) {
		out[i] = ShardStat{
			Shard:    i,
			QueueLen: len(sh.ch),
			QueueCap: e.queueCap,
			Fed:      sh.nfed,
			Pending:  sh.core.PendingTasks(),
			Degraded: sh.adm.degraded.Load(),
		}
	})
	return out
}

// WriteCheckpoint serializes the engine in the single-detector checkpoint
// format: per-shard sections merge into one — group keys are unique across
// shards, so the union of open windows, the sorted union of histories and
// the summed late count are exactly what one Detector fed the same stream
// would have written. ReadCheckpoint/ReadEngineCheckpoint both accept the
// result.
func (e *Engine) WriteCheckpoint(w io.Writer) (int64, error) {
	e.ctl.Lock()
	defer e.ctl.Unlock()
	out := checkpointJSON{Version: checkpointVersion, Model: e.model.toJSON()}
	type section struct {
		windows []windowJSON
		history []windowStatsJSON
		late    uint64
	}
	secs := make([]section, len(e.shards))
	e.quiesce(func(i int, sh *shard) {
		secs[i] = section{sh.core.windowsJSON(), sh.core.historyJSON(), sh.core.late}
	})
	for _, sec := range secs {
		out.Windows = append(out.Windows, sec.windows...)
		out.History = append(out.History, sec.history...)
		out.Late += sec.late
	}
	sort.Slice(out.Windows, func(i, j int) bool {
		a, b := out.Windows[i], out.Windows[j]
		if a.Host != b.Host {
			return a.Host < b.Host
		}
		return a.Stage < b.Stage
	})
	sort.SliceStable(out.History, func(i, j int) bool {
		a, b := out.History[i], out.History[j]
		if a.Host != b.Host {
			return a.Host < b.Host
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		return a.WindowUnixNs < b.WindowUnixNs
	})
	return writeCheckpointJSON(w, out)
}

// WriteCheckpointFile atomically persists the engine checkpoint at path
// (same temp+sync+rename dance as Detector.WriteCheckpointFile).
func (e *Engine) WriteCheckpointFile(path string) error {
	return writeCheckpointFileAtomic(path, func(w io.Writer) error {
		_, err := e.WriteCheckpoint(w)
		return err
	})
}

// NewEngineFromDetector lifts a single detector — typically one restored
// via ReadCheckpoint/LoadCheckpointFile — into a running engine: its open
// windows and history partition across shards by the same (host, stage)
// hash that routes live synopses, and the late count lands on shard 0. The
// detector must not be used afterwards.
func NewEngineFromDetector(d *Detector, opts ...EngineOption) *Engine {
	e, _ := newEngine(d.model, opts...)
	// Partition the detector's state to the owning shards.
	type adopted struct {
		open  map[groupKey]*windowState
		stats []WindowStats
	}
	parts := make([]adopted, len(e.shards))
	for k, ws := range d.open {
		i := e.shardIndex(k.host, k.stage)
		if parts[i].open == nil {
			parts[i].open = make(map[groupKey]*windowState)
		}
		parts[i].open[k] = ws
	}
	for _, st := range d.stats {
		i := e.shardIndex(st.Host, st.Stage)
		parts[i].stats = append(parts[i].stats, st)
	}
	e.quiesce(func(i int, sh *shard) {
		for k, ws := range parts[i].open {
			sh.core.open[k] = ws
		}
		sh.core.stats = parts[i].stats
		if i == 0 {
			sh.core.late = d.late
		}
	})
	return e
}

// ReadEngineCheckpoint rebuilds a running engine from any checkpoint
// written by Detector.WriteCheckpoint or Engine.WriteCheckpoint — the two
// formats are identical, which is what makes single-process deployments
// free to move between -shards settings across restarts.
func ReadEngineCheckpoint(r io.Reader, opts ...EngineOption) (*Engine, error) {
	d, err := ReadCheckpoint(r)
	if err != nil {
		return nil, err
	}
	return NewEngineFromDetector(d, opts...), nil
}

// LoadEngineCheckpointFile rebuilds a running engine from a checkpoint
// file.
func LoadEngineCheckpointFile(path string, opts ...EngineOption) (*Engine, error) {
	d, err := LoadCheckpointFile(path)
	if err != nil {
		return nil, err
	}
	return NewEngineFromDetector(d, opts...), nil
}

// Close stops every shard worker after its queue drains. Feeding after (or
// concurrently with) Close panics on the closed channel by design — stop
// feeders first. Open windows are NOT flushed; call Flush before Close (or
// WriteCheckpoint to carry them across a restart).
func (e *Engine) Close() error {
	e.ctl.Lock()
	defer e.ctl.Unlock()
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	for _, sh := range e.shards {
		close(sh.ch)
	}
	for _, sh := range e.shards {
		<-sh.done //saad:allow lockcheck Close must hold the control mutex until workers drain, or a concurrent control call would run inline on cores still owned by live workers
	}
	return nil
}

// sortAnomalies orders anomalies canonically: host, stage, window, then
// within one window the detector's own emission layers (new-signature flow
// first sorted by signature, then the proportion flow anomaly, then
// performance anomalies sorted by signature) — so a merged multi-shard
// drain reads exactly like a single detector's output re-sorted by group.
func sortAnomalies(out []Anomaly) {
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Host != b.Host {
			return a.Host < b.Host
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		if !a.Window.Equal(b.Window) {
			return a.Window.Before(b.Window)
		}
		if ar, br := anomalyRank(a), anomalyRank(b); ar != br {
			return ar < br
		}
		return a.Signature < b.Signature
	})
}

func anomalyRank(a Anomaly) int {
	switch {
	case a.NewSignature:
		return 0
	case a.Kind == FlowAnomaly:
		return 1
	default:
		return 2
	}
}
