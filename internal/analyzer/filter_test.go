package analyzer

import (
	"testing"
	"time"

	"saad/internal/logpoint"
)

func anomAt(minute int, host uint16, stage uint16, kind AnomalyKind) Anomaly {
	return Anomaly{
		Kind:   kind,
		Stage:  logpoint.StageID(stage),
		Host:   host,
		Window: epoch.Add(time.Duration(minute) * time.Minute),
	}
}

func TestAlarmFilterSuppressesIsolatedAlarms(t *testing.T) {
	f := NewAlarmFilter(2, 3, time.Minute)
	// A single-window alarm: held back.
	out := f.Filter([]Anomaly{anomAt(5, 1, 7, FlowAnomaly)})
	if len(out) != 0 {
		t.Fatalf("isolated alarm passed: %v", out)
	}
	if f.Suppressed() != 1 {
		t.Fatalf("suppressed = %d", f.Suppressed())
	}
	// An alarm in the same group far later: the first has expired, still
	// no confirmation.
	out = f.Filter([]Anomaly{anomAt(30, 1, 7, FlowAnomaly)})
	if len(out) != 0 {
		t.Fatalf("distant alarm passed: %v", out)
	}
}

func TestAlarmFilterPassesBursts(t *testing.T) {
	f := NewAlarmFilter(2, 3, time.Minute)
	if out := f.Filter([]Anomaly{anomAt(10, 4, 3, FlowAnomaly)}); len(out) != 0 {
		t.Fatalf("first window passed: %v", out)
	}
	// Second consecutive window confirms the burst and releases the held
	// first anomaly too.
	out := f.Filter([]Anomaly{anomAt(11, 4, 3, FlowAnomaly)})
	if len(out) != 2 {
		t.Fatalf("burst confirmation released %d anomalies, want 2", len(out))
	}
	if f.Suppressed() != 0 {
		t.Fatalf("suppressed = %d after release", f.Suppressed())
	}
	// Subsequent windows of the ongoing burst flow straight through.
	out = f.Filter([]Anomaly{anomAt(12, 4, 3, FlowAnomaly)})
	if len(out) != 1 {
		t.Fatalf("ongoing burst emitted %d", len(out))
	}
}

func TestAlarmFilterSeparatesGroups(t *testing.T) {
	f := NewAlarmFilter(2, 3, time.Minute)
	f.Filter([]Anomaly{anomAt(10, 1, 3, FlowAnomaly)})
	// Different host, stage and kind must not confirm each other.
	if out := f.Filter([]Anomaly{anomAt(11, 2, 3, FlowAnomaly)}); len(out) != 0 {
		t.Fatalf("cross-host confirmation: %v", out)
	}
	if out := f.Filter([]Anomaly{anomAt(11, 1, 9, FlowAnomaly)}); len(out) != 0 {
		t.Fatalf("cross-stage confirmation: %v", out)
	}
	if out := f.Filter([]Anomaly{anomAt(11, 1, 3, PerformanceAnomaly)}); len(out) != 0 {
		t.Fatalf("cross-kind confirmation: %v", out)
	}
}

func TestAlarmFilterGapWithinSpan(t *testing.T) {
	f := NewAlarmFilter(2, 3, time.Minute)
	f.Filter([]Anomaly{anomAt(10, 1, 1, FlowAnomaly)})
	// Window 12 is within a 3-window span of window 10: confirm.
	out := f.Filter([]Anomaly{anomAt(12, 1, 1, FlowAnomaly)})
	if len(out) != 2 {
		t.Fatalf("gap-within-span emitted %d", len(out))
	}
	// Window 15 onward: span has moved past 12, single alarm again held.
	out = f.Filter([]Anomaly{anomAt(16, 1, 1, FlowAnomaly)})
	if len(out) != 0 {
		t.Fatalf("post-burst isolated alarm passed: %v", out)
	}
}

func TestAlarmFilterPassthroughConfig(t *testing.T) {
	f := NewAlarmFilter(0, 0, 0) // clamps to 1/1, 1-minute window
	out := f.Filter([]Anomaly{anomAt(1, 1, 1, FlowAnomaly)})
	if len(out) != 1 {
		t.Fatalf("1/1 filter held an anomaly")
	}
}

func TestAlarmFilterMultipleAnomaliesSameWindow(t *testing.T) {
	f := NewAlarmFilter(2, 3, time.Minute)
	// Three anomalies in one window count as ONE window toward
	// confirmation.
	out := f.Filter([]Anomaly{
		anomAt(10, 1, 1, FlowAnomaly),
		anomAt(10, 1, 1, FlowAnomaly),
		anomAt(10, 1, 1, FlowAnomaly),
	})
	if len(out) != 0 {
		t.Fatalf("same-window repeats confirmed a burst: %v", out)
	}
	if f.Suppressed() != 3 {
		t.Fatalf("suppressed = %d", f.Suppressed())
	}
	out = f.Filter([]Anomaly{anomAt(11, 1, 1, FlowAnomaly)})
	if len(out) != 4 {
		t.Fatalf("confirmation released %d, want all 4", len(out))
	}
}
