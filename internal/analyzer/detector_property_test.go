package analyzer

import (
	"testing"
	"testing/quick"
	"time"

	"saad/internal/logpoint"
	"saad/internal/synopsis"
)

// TestDetectorRobustnessProperty feeds the detector arbitrary synopsis
// streams (random stages, hosts, points, durations, and timestamps,
// including out-of-order ones) and checks the structural invariants: no
// panics, window statistics plus the late-drop count account for every task
// exactly once, and anomaly counts never exceed task counts.
func TestDetectorRobustnessProperty(t *testing.T) {
	model := trainedModel(t)
	f := func(raw []struct {
		Stage  uint8
		Host   uint8
		StartS uint16
		DurUs  uint32
		Pts    []uint8
	}) bool {
		det := NewDetector(model)
		var anomalies []Anomaly
		for i, r := range raw {
			s := &synopsis.Synopsis{
				Stage:    logpoint.StageID(r.Stage%4 + 1),
				Host:     uint16(r.Host % 4),
				TaskID:   uint64(i),
				Start:    epoch.Add(time.Duration(r.StartS) * time.Second),
				Duration: time.Duration(r.DurUs) * time.Microsecond,
			}
			for _, p := range r.Pts {
				s.Points = append(s.Points, synopsis.PointCount{Point: logpoint.ID(p%8 + 1), Count: 1})
			}
			s.Normalize()
			anomalies = append(anomalies, det.Feed(s)...)
		}
		anomalies = append(anomalies, det.Flush()...)

		// Window stats plus dropped late arrivals must account for every
		// fed task exactly once.
		total := int(det.LateSynopses())
		for _, w := range det.WindowHistory() {
			if w.Tasks < 0 || w.FlowOutliers < 0 || w.PerfOutliers < 0 {
				return false
			}
			if w.FlowOutliers > w.Tasks || w.PerfOutliers > w.Tasks {
				return false
			}
			total += w.Tasks
		}
		if total != len(raw) {
			return false
		}
		// Anomaly evidence is bounded by its window's tasks.
		for _, a := range anomalies {
			if a.Outliers < 0 || a.Tasks < 0 || a.Outliers > a.Tasks && a.Tasks > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTrainerRobustnessProperty trains on arbitrary synopsis multisets and
// checks model invariants: shares sum to 1 per stage, flow-outlier share in
// [0, 1], thresholds non-negative.
func TestTrainerRobustnessProperty(t *testing.T) {
	f := func(raw []struct {
		Stage uint8
		DurUs uint32
		Pts   []uint8
	}) bool {
		if len(raw) == 0 {
			return true
		}
		tr, err := NewTrainer(DefaultConfig())
		if err != nil {
			return false
		}
		for i, r := range raw {
			s := &synopsis.Synopsis{
				Stage:    logpoint.StageID(r.Stage%3 + 1),
				TaskID:   uint64(i),
				Start:    epoch,
				Duration: time.Duration(r.DurUs) * time.Microsecond,
			}
			for _, p := range r.Pts {
				s.Points = append(s.Points, synopsis.PointCount{Point: logpoint.ID(p%6 + 1), Count: 1})
			}
			s.Normalize()
			tr.Add(s)
		}
		model, err := tr.Train()
		if err != nil {
			return false
		}
		for _, sm := range model.Stages {
			if sm.FlowOutlierShare < 0 || sm.FlowOutlierShare > 1 {
				return false
			}
			var shares float64
			count := 0
			for _, sig := range sm.Signatures {
				if sig.Share < 0 || sig.Share > 1 || sig.DurationThreshold < 0 {
					return false
				}
				shares += sig.Share
				count += sig.Count
			}
			if count != sm.Total {
				return false
			}
			if shares < 0.999 || shares > 1.001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
