package analyzer

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"saad/internal/logpoint"
	"saad/internal/metrics"
	"saad/internal/stats"
	"saad/internal/synopsis"
	"saad/internal/trace"
)

// AnomalyKind distinguishes the two anomaly classes of Section 3.3.3.
type AnomalyKind int

// Anomaly kinds.
const (
	FlowAnomaly AnomalyKind = iota + 1
	PerformanceAnomaly
)

// String implements fmt.Stringer.
func (k AnomalyKind) String() string {
	switch k {
	case FlowAnomaly:
		return "flow"
	case PerformanceAnomaly:
		return "performance"
	default:
		return fmt.Sprintf("AnomalyKind(%d)", int(k))
	}
}

// Anomaly is one detected anomaly: a statistically significant increase of
// outlier tasks in one stage on one host during one window.
type Anomaly struct {
	// Kind is flow or performance.
	Kind AnomalyKind
	// Stage and Host locate the anomaly.
	Stage logpoint.StageID
	Host  uint16
	// Window is the start of the detection window.
	Window time.Time
	// Signature is the offending signature for performance anomalies and
	// for new-signature flow anomalies; empty for proportion-driven flow
	// anomalies spanning several rare signatures.
	Signature synopsis.Signature
	// NewSignature marks flow anomalies triggered by a signature never seen
	// in training (condition (ii) of Section 3.3.3).
	NewSignature bool
	// Test carries the proportion-test outcome that triggered the anomaly
	// (zero-valued for new-signature anomalies, which need no test).
	Test stats.ProportionTestResult
	// Outliers and Tasks are the window's outlier and total task counts for
	// the tested group.
	Outliers, Tasks int
	// Examples holds up to Config.MaxExamples sample outlier synopses for
	// root-cause inspection.
	Examples []*synopsis.Synopsis
}

// String implements fmt.Stringer with a single-line report.
func (a Anomaly) String() string {
	tag := ""
	if a.NewSignature {
		tag = " NEW-SIGNATURE"
	}
	return fmt.Sprintf("[%s] stage=%d host=%d window=%s outliers=%d/%d%s",
		a.Kind, a.Stage, a.Host, a.Window.Format("15:04:05"), a.Outliers, a.Tasks, tag)
}

// WindowStats summarizes one closed (host, stage) window regardless of
// whether it was anomalous; the report renderer uses it for timelines.
type WindowStats struct {
	Stage        logpoint.StageID
	Host         uint16
	Window       time.Time
	Tasks        int
	FlowOutliers int
	PerfOutliers int
}

// Detector consumes a time-ordered stream of synopses and emits anomalies
// at window boundaries. It is the runtime half of the analyzer: per task it
// performs only hash-map lookups and floating point comparisons; the
// proportion tests run once per stage per window (paper Section 4.2).
// Detector is not safe for concurrent use; feed it from one goroutine.
type Detector struct {
	model *Model
	cfg   Config

	open map[groupKey]*windowState
	// closedStats accumulates per-window statistics for reporting.
	stats []WindowStats
	// late counts synopses dropped because their Start preceded the open
	// window of their group (out-of-order arrivals past a window boundary).
	late uint64
	// scratch holds the packed signature bytes of the synopsis being
	// observed, reused across Feed calls so the interned-id lookup does not
	// allocate.
	scratch []byte
	// retainCopy makes the detector deep-copy any synopsis it keeps as an
	// anomaly example. Off by default (callers own their synopses for the
	// process lifetime); the engine turns it on when a release hook recycles
	// synopses after observation.
	retainCopy bool

	metrics *metrics.AnalyzerMetrics
	flight  *trace.FlightRing
}

type groupKey struct {
	host  uint16
	stage logpoint.StageID
}

type windowState struct {
	start        time.Time
	tasks        int
	flowOutliers int
	newSigs      map[synopsis.Signature]*sigEvidence
	flowExamples []*synopsis.Synopsis
	// perSig keys on the model's interned signature id (see
	// StageModel.buildIndex); only signatures known to the model land here,
	// so an id always exists. Unknown signatures go to newSigs, keyed by
	// the signature itself.
	perSig map[int32]*sigWindow
}

type sigEvidence struct {
	count    int
	examples []*synopsis.Synopsis
}

type sigWindow struct {
	tasks        int
	perfOutliers int
	examples     []*synopsis.Synopsis
}

// NewDetector returns a detector for the trained model. The model's
// configuration governs windows and significance. The model must not be
// mutated afterwards: its signature interning index is built here and
// shared read-only (including across engine shards).
func NewDetector(model *Model) *Detector {
	model.ensureIndex()
	return &Detector{
		model: model,
		cfg:   model.Config,
		open:  make(map[groupKey]*windowState),
	}
}

// SetMetrics attaches a metrics bundle (nil disables): synopses fed,
// windows closed, window-close latency and per-stage anomaly counts.
func (d *Detector) SetMetrics(m *metrics.AnalyzerMetrics) { d.metrics = m }

// SetFlight attaches a flight-recorder ring (nil disables): window opens
// and closes and late drops are recorded as pipeline events. Recording is a
// few atomic stores, so the detector's per-task cost is unchanged.
func (d *Detector) SetFlight(r *trace.FlightRing) { d.flight = r }

// SetRetainCopy controls example retention: when on, every synopsis kept in
// an anomaly report is deep-copied at retention time, so the caller may
// recycle (or mutate) the fed synopsis as soon as Feed returns. Required
// whenever the feeder pools synopses (see analyzer.WithSynopsisRelease).
func (d *Detector) SetRetainCopy(on bool) { d.retainCopy = on }

// Model returns a deep copy of the trained model the detector judges
// against. A detector restored from a checkpoint carries its model with
// it, so callers need no separate model file. The copy is defensive:
// lifecycle code (retraining, stores, admin endpoints) can inspect or even
// mutate the returned model without perturbing the serving state, whose
// interning index is shared read-only across engine shards.
func (d *Detector) Model() *Model { return d.model.Clone() }

// PendingTasks returns the number of tasks observed in still-open windows —
// the live evidence a checkpoint would carry across a restart.
func (d *Detector) PendingTasks() int {
	n := 0
	for _, w := range d.open {
		n += w.tasks
	}
	return n
}

// Feed processes one synopsis and returns the anomalies from any window the
// synopsis's timestamp closed. Synopses should arrive in roughly increasing
// Start order per (host, stage); SAAD's single analyzer consuming per-node
// FIFO streams guarantees that in practice. A synopsis whose Start precedes
// the group's open window is late — its window already closed and its tests
// already ran — so it is dropped with accounting (LateSynopses and the
// late_synopses_total metric) rather than silently misattributed to the
// current window.
//
//saad:hotpath
func (d *Detector) Feed(s *synopsis.Synopsis) []Anomaly {
	if m := d.metrics; m != nil {
		m.SynopsesFed.Inc()
	}
	key := groupKey{host: s.Host, stage: s.Stage}
	w := d.open[key]
	var out []Anomaly
	if w != nil && s.Start.Before(w.start) {
		d.late++
		if m := d.metrics; m != nil {
			m.LateSynopses.Inc()
		}
		d.flight.Record(trace.EventLateDrop, uint16(s.Stage), s.Host, s.TaskID, 0)
		return nil
	}
	if w != nil && !s.Start.Before(w.start.Add(d.cfg.Window)) {
		out = d.closeWindow(key, w)
		w = nil
	}
	if w == nil {
		w = &windowState{
			start:   s.Start.Truncate(d.cfg.Window),
			perSig:  make(map[int32]*sigWindow),
			newSigs: make(map[synopsis.Signature]*sigEvidence),
		}
		d.open[key] = w
		d.flight.Record(trace.EventWindowOpen, uint16(key.stage), key.host, uint64(w.start.UnixNano()), 0)
	}
	d.observe(w, s)
	return out
}

// LateSynopses returns how many synopses were dropped as late arrivals.
func (d *Detector) LateSynopses() uint64 { return d.late }

// sigKey packs the synopsis's signature bytes into the detector's scratch
// buffer (no allocation). A synopsis in canonical form (Normalize) has its
// points sorted and distinct, so the packed bytes equal s.Signature(); a
// malformed one falls back to the allocating, canonicalizing path.
func (d *Detector) sigKey(s *synopsis.Synopsis) []byte {
	buf := d.scratch[:0]
	var prev logpoint.ID
	for i, pc := range s.Points {
		if i > 0 && pc.Point <= prev {
			buf = append(buf[:0], s.Signature()...)
			d.scratch = buf
			return buf
		}
		buf = append(buf, byte(pc.Point>>8), byte(pc.Point))
		prev = pc.Point
	}
	d.scratch = buf
	return buf
}

// retain returns the synopsis to keep as an anomaly example: the synopsis
// itself normally, a deep copy under SetRetainCopy (the fed synopsis may be
// recycled the moment Feed returns). At most one retention site fires per
// observe, so the clone cost is bounded by MaxExamples per window.
func (d *Detector) retain(s *synopsis.Synopsis) *synopsis.Synopsis {
	if d.retainCopy {
		return s.Clone()
	}
	return s
}

// observe classifies one synopsis against the model inside window w.
func (d *Detector) observe(w *windowState, s *synopsis.Synopsis) {
	w.tasks++
	sm := d.model.Stage(s.Stage)
	buf := d.sigKey(s)
	var (
		id int32
		ok bool
	)
	if sm != nil {
		// string(buf) in the map index compiles to an allocation-free
		// lookup; buf itself is the detector's reusable scratch buffer.
		id, ok = sm.sigIDs[string(buf)]
	}
	if !ok {
		// Never seen in training: a new execution flow. Materialize the
		// signature (cold path — only unknown flows allocate).
		sig := synopsis.Signature(buf)
		ev := w.newSigs[sig]
		if ev == nil {
			ev = &sigEvidence{}
			w.newSigs[sig] = ev
		}
		ev.count++
		if len(ev.examples) < cap1(d.cfg.MaxExamples) {
			ev.examples = append(ev.examples, d.retain(s))
		}
		w.flowOutliers++
		return
	}
	sigModel := sm.sigByID[id]
	if sigModel.FlowOutlier {
		w.flowOutliers++
		if len(w.flowExamples) < d.cfg.MaxExamples {
			w.flowExamples = append(w.flowExamples, d.retain(s))
		}
		return
	}
	// Normal flow: eligible for performance-outlier classification.
	sw := w.perSig[id]
	if sw == nil {
		sw = &sigWindow{}
		w.perSig[id] = sw
	}
	sw.tasks++
	if sigModel.PerfEligible && s.Duration > sigModel.DurationThreshold {
		sw.perfOutliers++
		if len(sw.examples) < d.cfg.MaxExamples {
			sw.examples = append(sw.examples, d.retain(s))
		}
	}
}

// cap1 returns at least 1 so new-signature evidence is retained even with
// MaxExamples = 0 disabled example collection elsewhere.
func cap1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// Flush closes all open windows and returns their anomalies. Call at end of
// stream.
func (d *Detector) Flush() []Anomaly {
	keys := make([]groupKey, 0, len(d.open))
	for k := range d.open {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].host != keys[j].host {
			return keys[i].host < keys[j].host
		}
		return keys[i].stage < keys[j].stage
	})
	var out []Anomaly
	for _, k := range keys {
		out = append(out, d.closeWindow(k, d.open[k])...)
	}
	return out
}

// WindowHistory returns per-window statistics for all closed windows in
// close order.
func (d *Detector) WindowHistory() []WindowStats {
	return append([]WindowStats(nil), d.stats...)
}

func (d *Detector) closeWindow(key groupKey, w *windowState) []Anomaly {
	if m := d.metrics; m != nil {
		// Wall-clock (not virtual-time) latency: how long the proportion
		// tests take is what tells an operator the analyzer keeps up.
		start := time.Now()
		defer func() {
			m.WindowsClosed.Inc()
			m.WindowCloseLatency.Observe(time.Since(start).Seconds())
		}()
	}
	delete(d.open, key)
	perf := 0
	var anomalies []Anomaly

	sm := d.model.Stage(key.stage)

	// Flow condition (ii): any signature unseen in training.
	newSigs := make([]synopsis.Signature, 0, len(w.newSigs))
	for sig := range w.newSigs {
		newSigs = append(newSigs, sig)
	}
	sort.Slice(newSigs, func(i, j int) bool { return newSigs[i] < newSigs[j] })
	for _, sig := range newSigs {
		ev := w.newSigs[sig]
		anomalies = append(anomalies, Anomaly{
			Kind:         FlowAnomaly,
			Stage:        key.stage,
			Host:         key.host,
			Window:       w.start,
			Signature:    sig,
			NewSignature: true,
			Outliers:     ev.count,
			Tasks:        w.tasks,
			// cap1, matching observe: even with MaxExamples = 0 the one
			// retained example — the only record of the unseen flow — is
			// kept on the anomaly.
			Examples: clipExamples(ev.examples, cap1(d.cfg.MaxExamples)),
		})
	}

	// Flow condition (i): proportion test against the training share.
	if sm != nil && w.tasks > 0 {
		res, err := d.propTest(w.flowOutliers, w.tasks, sm.FlowOutlierShare)
		if err == nil && res.Reject && len(newSigs) == 0 {
			// Known-but-rare signatures spiked. (When new signatures are
			// present they already produced anomalies above; avoid double
			// reporting the same evidence.)
			anomalies = append(anomalies, Anomaly{
				Kind:     FlowAnomaly,
				Stage:    key.stage,
				Host:     key.host,
				Window:   w.start,
				Test:     res,
				Outliers: w.flowOutliers,
				Tasks:    w.tasks,
				Examples: clipExamples(w.flowExamples, d.cfg.MaxExamples),
			})
		}
	}

	// Performance anomalies: per signature group (Section 3.3.3). Interned
	// ids were assigned in lexicographic signature order, so numeric id
	// order reproduces the historical signature sort.
	ids := make([]int32, 0, len(w.perSig))
	for id := range w.perSig {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		sw := w.perSig[id]
		perf += sw.perfOutliers
		if sm == nil || sw.tasks == 0 {
			continue
		}
		sigModel := sm.sigByID[id]
		if !sigModel.PerfEligible {
			continue
		}
		sig := sigModel.Signature
		// Training traces with duration ties at the percentile can report a
		// near-zero empirical outlier share, which would make any single
		// slow task "significant"; the baseline is floored at half the
		// nominal share.
		p0 := sigModel.PerfTrainShare
		if floor := d.cfg.nominalPerfOutlierShare() / 2; p0 < floor {
			p0 = floor
		}
		res, err := d.propTest(sw.perfOutliers, sw.tasks, p0)
		if err != nil || !res.Reject {
			continue
		}
		anomalies = append(anomalies, Anomaly{
			Kind:      PerformanceAnomaly,
			Stage:     key.stage,
			Host:      key.host,
			Window:    w.start,
			Signature: sig,
			Test:      res,
			Outliers:  sw.perfOutliers,
			Tasks:     sw.tasks,
			Examples:  clipExamples(sw.examples, d.cfg.MaxExamples),
		})
	}

	d.stats = append(d.stats, WindowStats{
		Stage:        key.stage,
		Host:         key.host,
		Window:       w.start,
		Tasks:        w.tasks,
		FlowOutliers: w.flowOutliers,
		PerfOutliers: perf,
	})
	d.flight.Record(trace.EventWindowClose, uint16(key.stage), key.host, uint64(w.tasks), uint64(len(anomalies)))
	if m := d.metrics; m != nil {
		for _, a := range anomalies {
			m.Anomalies.With(a.Kind.String(), strconv.Itoa(int(a.Stage))).Inc()
		}
	}
	return anomalies
}

func (d *Detector) propTest(successes, n int, p0 float64) (stats.ProportionTestResult, error) {
	var (
		res stats.ProportionTestResult
		err error
	)
	if d.cfg.UseTTest {
		res, err = stats.ProportionTTest(successes, n, p0, d.cfg.Alpha)
	} else {
		res, err = stats.ProportionZTest(successes, n, p0, d.cfg.Alpha)
	}
	if err != nil {
		return res, err
	}
	// Gate on practical significance too: a rejection whose observed
	// increase is under MinEffect is statistical noise at these window
	// sizes.
	if res.Reject && res.PHat < p0+d.cfg.MinEffect {
		res.Reject = false
	}
	return res, nil
}

func clipExamples(in []*synopsis.Synopsis, max int) []*synopsis.Synopsis {
	if len(in) <= max {
		return in
	}
	return in[:max]
}
