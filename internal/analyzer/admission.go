package analyzer

import (
	"sync/atomic"

	"saad/internal/trace"
)

// Admission control: graceful degradation under overload.
//
// A metastable storm (retrying clients, a flapping partition healing, a
// replayed spill ring) can offer the engine more synopses than its shards
// can absorb. Without admission control the bounded shard queues push
// backpressure all the way into the TCP handlers, which stops reads, which
// makes clients spill and retry harder — the analyzer collapses exactly
// when it is most needed. Admission control instead sheds load at the
// front door once saturation is *sustained*, keeping a deterministic 1-in-N
// sample flowing so windows still close and verdicts still emerge, and
// recovers via hysteresis once the queues stay calm.
//
// Mechanics (all per shard, all observation-count based — no wall clock on
// the hot path, and deterministic under test):
//
//   - Saturation: a Feed observing queue depth >= HighWater×cap bumps a
//     streak counter; SaturateAfter consecutive saturated observations flip
//     the shard to degraded. One calm observation resets the streak, so
//     transient bursts never degrade.
//   - Degraded: the shard keeps 1-in-KeepEvery synopses (same counter
//     convention as trace.Sampler: the 1st, KeepEvery+1st, ... are kept)
//     and sheds the rest, counted exactly in shed_synopses_total. Groups
//     hashed to non-degraded shards are untouched.
//   - Recovery: RecoverAfter consecutive observations at depth <=
//     LowWater×cap flip the shard back. The low-water/high-water gap plus
//     the two streak lengths form the hysteresis band; recovery is
//     observation-driven, so a fully idle shard stays degraded until
//     traffic proves the queue calm (and a degraded idle shard sheds
//     almost nothing, since shedding is per arriving synopsis).
//
// Accounting invariant: offered = Fed() + Shed(), exactly — every synopsis
// offered to Feed/FeedBatch/Emit is either admitted (counted in fed, then
// delivered to its core) or counted shed. Enter/exit transitions land in
// the shard's flight-recorder ring as EventDegradeEnter/EventDegradeExit.

// AdmissionConfig tunes engine admission control. The zero value of any
// field selects its default.
type AdmissionConfig struct {
	// HighWater is the queue-depth fraction (of the shard queue capacity)
	// at or above which a Feed observation counts as saturated. Default
	// 0.9.
	HighWater float64
	// LowWater is the queue-depth fraction at or below which a Feed
	// observation counts as calm while degraded. Default 0.25.
	LowWater float64
	// SaturateAfter is how many consecutive saturated observations flip a
	// shard to degraded. Default 64.
	SaturateAfter int
	// RecoverAfter is how many consecutive calm observations flip a shard
	// back to normal. Default 256.
	RecoverAfter int
	// KeepEvery is the degraded-mode sampling divisor: 1 in KeepEvery
	// synopses is admitted (1 admits everything, disabling shedding but
	// keeping the degraded flag's observability). Default 8.
	KeepEvery int
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.HighWater <= 0 || c.HighWater > 1 {
		c.HighWater = 0.9
	}
	if c.LowWater <= 0 {
		c.LowWater = 0.25
	}
	if c.LowWater > c.HighWater {
		c.LowWater = c.HighWater
	}
	if c.SaturateAfter < 1 {
		c.SaturateAfter = 64
	}
	if c.RecoverAfter < 1 {
		c.RecoverAfter = 256
	}
	if c.KeepEvery < 1 {
		c.KeepEvery = 8
	}
	return c
}

// admissionState is a shard's degraded-mode state. Feeders race on the
// streak counters benignly (a lost increment only lengthens a streak by
// one observation); the degraded flag itself transitions through CAS so
// enter/exit side effects run exactly once per transition.
type admissionState struct {
	degraded atomic.Bool
	sat      atomic.Int64  // consecutive saturated observations
	calm     atomic.Int64  // consecutive calm observations while degraded
	keep     atomic.Uint64 // degraded-mode 1-in-N admission counter
}

// WithAdmission enables admission control with the given tuning (zero
// fields take defaults). Without this option the engine never sheds: a
// full shard queue blocks the feeder (pure backpressure), as before.
func WithAdmission(cfg AdmissionConfig) EngineOption {
	return func(o *engineOptions) {
		c := cfg.withDefaults()
		o.admission = &c
	}
}

// admit decides one synopsis's fate against sh's queue. It returns false
// when the synopsis must be shed (already counted); true admits it.
//
//saad:hotpath
func (e *Engine) admit(sh *shard) bool {
	a := &sh.adm
	depth := len(sh.ch)
	if a.degraded.Load() {
		if depth <= e.admLow {
			if a.calm.Add(1) >= int64(e.admCfg.RecoverAfter) {
				e.exitDegraded(sh, depth)
			}
		} else if a.calm.Load() != 0 {
			a.calm.Store(0)
		}
		// Re-check: the observation above may just have recovered the
		// shard, and that synopsis is admitted like any post-recovery one.
		if a.degraded.Load() {
			if e.admCfg.KeepEvery != 1 && a.keep.Add(1)%uint64(e.admCfg.KeepEvery) != 1 {
				e.shed.Add(1)
				if m := e.m; m != nil {
					m.ShedSynopses.Inc()
				}
				return false
			}
		}
		return true
	}
	if depth >= e.admHigh {
		if a.sat.Add(1) >= int64(e.admCfg.SaturateAfter) {
			e.enterDegraded(sh, depth)
		}
	} else if a.sat.Load() != 0 {
		a.sat.Store(0)
	}
	return true
}

// enterDegraded flips sh into degraded mode; the CAS makes the side
// effects (gauge, transition counter, flight event) once-only when feeders
// race. Cold path: runs at most once per transition.
func (e *Engine) enterDegraded(sh *shard, depth int) {
	a := &sh.adm
	if !a.degraded.CompareAndSwap(false, true) {
		return
	}
	a.sat.Store(0)
	a.calm.Store(0)
	a.keep.Store(0) // deterministic: first degraded synopsis is kept
	n := e.degraded.Add(1)
	if m := e.m; m != nil {
		m.DegradedShards.Set(float64(n))
		m.DegradedTransitions.Inc()
	}
	sh.flight.Record(trace.EventDegradeEnter, 0, 0, uint64(depth), uint64(e.admCfg.KeepEvery))
}

// exitDegraded recovers sh from degraded mode.
func (e *Engine) exitDegraded(sh *shard, depth int) {
	a := &sh.adm
	if !a.degraded.CompareAndSwap(true, false) {
		return
	}
	a.sat.Store(0)
	a.calm.Store(0)
	n := e.degraded.Add(-1)
	if m := e.m; m != nil {
		m.DegradedShards.Set(float64(n))
		m.DegradedTransitions.Inc()
	}
	sh.flight.Record(trace.EventDegradeExit, 0, 0, uint64(depth), e.shed.Load())
}

// Degraded reports whether any shard is currently shedding load.
func (e *Engine) Degraded() bool { return e.degraded.Load() > 0 }

// DegradedShards returns how many shards are currently degraded.
func (e *Engine) DegradedShards() int { return int(e.degraded.Load()) }

// Shed returns how many synopses admission control has shed. The exact
// invariant offered = Fed() + Shed() holds at all times.
func (e *Engine) Shed() uint64 { return e.shed.Load() }
