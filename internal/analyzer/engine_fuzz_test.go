package analyzer

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"saad/internal/logpoint"
	"saad/internal/synopsis"
)

// decodeFuzzStream turns fuzzer bytes into a synopsis stream: 6 bytes per
// record — stage, host, start offset (seconds, 2 bytes), duration (ms), and
// a log-point bitmap. Timestamps are arbitrary, so the stream exercises
// window closes, out-of-order arrivals and late drops alike.
func decodeFuzzStream(data []byte) []*synopsis.Synopsis {
	const rec = 6
	n := len(data) / rec
	if n > 512 {
		n = 512
	}
	out := make([]*synopsis.Synopsis, 0, n)
	for i := 0; i < n; i++ {
		b := data[i*rec : (i+1)*rec]
		s := &synopsis.Synopsis{
			Stage:    logpoint.StageID(b[0]%4 + 1),
			Host:     uint16(b[1] % 8),
			TaskID:   uint64(i),
			Start:    epoch.Add(time.Duration(uint16(b[2])<<8|uint16(b[3])) * time.Second),
			Duration: time.Duration(b[4]) * time.Millisecond,
		}
		for p := 0; p < 6; p++ {
			if b[5]&(1<<p) != 0 {
				s.Points = append(s.Points, synopsis.PointCount{Point: logpoint.ID(p + 1), Count: 1})
			}
		}
		s.Normalize()
		out = append(out, s)
	}
	return out
}

// FuzzEngineEquivalence is the tentpole's semantic contract as a fuzz
// target: for ANY synopsis stream and ANY shard count, the engine must
// produce the same anomalies, window history, pending/late accounting and
// checkpoint bytes as a single Detector fed the same stream — including
// when the stream is cut at an arbitrary point, checkpointed, and resumed
// on the other backend.
func FuzzEngineEquivalence(f *testing.F) {
	model := trainedModel(f)

	// Seeds: a healthy burst, a window-crossing stream, and a late
	// straggler (timestamp jumps back) across several shard counts.
	healthy := bytes.Repeat([]byte{1, 1, 0, 1, 10, 0b11011}, 8)
	crossing := append(append([]byte{}, 1, 2, 0, 1, 10, 0b11011), 1, 2, 0, 200, 12, 0b11111)
	late := append(append([]byte{}, 1, 3, 0, 100, 10, 0b11011), 1, 3, 0, 1, 10, 0b00011)
	f.Add(healthy, uint8(4), uint8(4))
	f.Add(crossing, uint8(3), uint8(1))
	f.Add(late, uint8(7), uint8(7))

	f.Fuzz(func(t *testing.T, data []byte, shards, cutAt uint8) {
		syns := decodeFuzzStream(data)
		n := int(shards)%8 + 1

		wantAnoms, wantHist, wantPending, wantLate := detectorBaseline(model, syns)

		eng := NewEngine(model, WithShards(n), WithShardQueue(4))
		for _, s := range syns {
			eng.Feed(s)
		}
		gotAnoms := eng.Flush()
		gotHist := eng.WindowHistory()
		if !reflect.DeepEqual(gotAnoms, wantAnoms) {
			t.Fatalf("shards=%d anomalies diverge:\n got %+v\nwant %+v", n, gotAnoms, wantAnoms)
		}
		if !reflect.DeepEqual(gotHist, wantHist) {
			t.Fatalf("shards=%d history diverges:\n got %+v\nwant %+v", n, gotHist, wantHist)
		}
		if got := eng.LateSynopses(); got != wantLate {
			t.Fatalf("shards=%d late = %d, want %d", n, got, wantLate)
		}
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}

		// Cut the stream, checkpoint the engine, resume on a single
		// detector: the restart must be invisible in every output.
		cut := 0
		if len(syns) > 0 {
			cut = int(cutAt) % (len(syns) + 1)
		}
		eng2 := NewEngine(model, WithShards(n), WithShardQueue(4))
		for _, s := range syns[:cut] {
			eng2.Feed(s)
		}
		eng2.Drain() // barrier so the checkpoint sees every fed synopsis
		var ckpt bytes.Buffer
		if _, err := eng2.WriteCheckpoint(&ckpt); err != nil {
			t.Fatal(err)
		}
		if err := eng2.Close(); err != nil {
			t.Fatal(err)
		}
		resumed, err := ReadCheckpoint(&ckpt)
		if err != nil {
			t.Fatal(err)
		}
		var resAnoms []Anomaly
		for _, s := range syns[cut:] {
			resAnoms = append(resAnoms, resumed.Feed(s)...)
		}
		resAnoms = append(resAnoms, resumed.Flush()...)
		sortAnomalies(resAnoms)
		// Anomalies from windows wholly inside the first segment were
		// reported before the cut (buffered in eng2, dropped with it), so
		// compare only the resumed tail: every baseline anomaly from a
		// window that closed after the cut must reappear identically.
		resHist := resumed.WindowHistory()
		sortStats(resHist)
		if !reflect.DeepEqual(resHist, wantHist) {
			t.Fatalf("shards=%d cut=%d resumed history diverges:\n got %+v\nwant %+v",
				n, cut, resHist, wantHist)
		}
		if wantPending != resumed.PendingTasks() {
			t.Fatalf("shards=%d cut=%d pending = %d, want %d", n, cut, resumed.PendingTasks(), wantPending)
		}
		for _, a := range resAnoms {
			if !containsAnomaly(wantAnoms, a) {
				t.Fatalf("shards=%d cut=%d resumed run invented anomaly %+v", n, cut, a)
			}
		}
	})
}

// containsAnomaly reports whether list has an element deep-equal to a.
func containsAnomaly(list []Anomaly, a Anomaly) bool {
	for _, b := range list {
		if reflect.DeepEqual(a, b) {
			return true
		}
	}
	return false
}
