package analyzer

import "saad/internal/trace"

// Hot model swap: SwapModel rides the same quiesce control plane as the
// engine's snapshot operations, so the cutover needs no new locks and
// cannot drop or reorder synopses. The swap command travels each shard's
// FIFO data channel; every synopsis enqueued before the swap is therefore
// judged by the old model, every synopsis enqueued after by the new one,
// and per-group FIFO is untouched because group-to-shard routing does not
// depend on the model.

// SwapModel atomically replaces the serving model on every shard and
// returns the anomalies of the windows the swap closed (in canonical
// order; with an anomaly sink attached they go to the sink instead and the
// return is nil, exactly like Flush).
//
// Each shard cuts over at a window boundary: its open windows are closed
// and tested against the OLD model — evidence gathered under one model is
// never judged by another — and a fresh detector core on the new model
// takes ownership of the shard, inheriting the closed-window history and
// late-synopsis accounting so reporting and checkpoints stay continuous
// across the swap.
//
// Like the other control-plane methods, SwapModel serializes on the
// engine's control mutex, so it is safe from any goroutine — a lifecycle
// auto-promotion firing on a stream handler cannot interleave with a
// checkpoint or a second swap. Concurrent feeders are safe and simply
// queue behind the swap. The model must not be mutated after the call (its
// interning index becomes shared read-only across shards).
func (e *Engine) SwapModel(model *Model) []Anomaly {
	e.ctl.Lock()
	defer e.ctl.Unlock()
	model.ensureIndex()
	parts := make([][]Anomaly, len(e.shards))
	e.quiesce(func(i int, sh *shard) {
		part := sh.out
		sh.out = nil
		if fl := sh.core.Flush(); len(fl) > 0 {
			if e.sink != nil {
				e.sink(fl)
			} else {
				part = append(part, fl...)
			}
		}
		fresh := NewDetector(model)
		fresh.stats = sh.core.stats
		fresh.late = sh.core.late
		fresh.metrics = sh.core.metrics
		fresh.flight = sh.core.flight
		fresh.retainCopy = sh.core.retainCopy
		sh.core = fresh
		// Recorded inside the quiesce fn, i.e. on the shard worker
		// goroutine, right at the cutover point: the flight ring shows the
		// swap exactly between the last old-model and first new-model
		// verdicts.
		sh.flight.Record(trace.EventModelSwap, 0, 0, 0, 0)
		parts[i] = part
	})
	// Safe to write outside the quiesce: e.model is only touched by
	// control-plane methods (WriteCheckpoint, Model), which hold e.ctl like
	// this one; the data path never reads it.
	e.model = model
	if e.sink != nil {
		return nil
	}
	var out []Anomaly
	for _, p := range parts {
		out = append(out, p...)
	}
	sortAnomalies(out)
	return out
}
