package analyzer

import (
	"sync/atomic"
	"testing"
	"time"

	"saad/internal/logpoint"
	"saad/internal/synopsis"
)

// TestEngineReleaseAccounting proves the WithSynopsisRelease contract: the
// hook fires exactly once for every synopsis handed to Feed/FeedBatch,
// including synopses the detector drops as late — nothing leaks, nothing
// double-frees.
func TestEngineReleaseAccounting(t *testing.T) {
	model := trainedModel(t)
	var released atomic.Uint64
	eng := NewEngine(model, WithShards(4),
		WithSynopsisRelease(func(*synopsis.Synopsis) { released.Add(1) }))

	stream := multiGroupStream(3)
	fed := 0
	for i, s := range stream {
		if i%3 == 0 {
			eng.Feed(s)
			fed++
		} else if i%3 == 1 {
			eng.FeedBatch([]*synopsis.Synopsis{s})
			fed++
		} else {
			eng.FeedBatch([]*synopsis.Synopsis{s, makeSyn(s.Stage, s.Host, s.Start, s.Duration, 1, 2, 4, 5)})
			fed += 2
		}
	}
	eng.Drain()
	eng.Flush()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if got := released.Load(); got != uint64(fed) {
		t.Fatalf("release hook fired %d times for %d fed synopses", got, fed)
	}
}

// TestEngineReleaseWithPoolKeepsExamplesIntact is the clone-on-retain
// property: with a recycling pool as the release hook, anomaly examples must
// be deep copies — recycling (and rewriting) a released synopsis must not
// corrupt an already-emitted report.
func TestEngineReleaseWithPoolKeepsExamplesIntact(t *testing.T) {
	model := trainedModel(t)
	pool := synopsis.NewPool(64)
	var anomalies []Anomaly
	var mu chan struct{} = make(chan struct{}, 1)
	mu <- struct{}{}
	eng := NewEngine(model, WithShards(2),
		WithSynopsisRelease(pool.Put),
		WithAnomalySink(func(out []Anomaly) {
			<-mu
			anomalies = append(anomalies, out...)
			mu <- struct{}{}
		}))

	// A burst of new-signature synopses (never trained) forces flow
	// anomalies whose examples retain the fed synopsis.
	ts := epoch
	for i := 0; i < 3000; i++ {
		s := pool.Get()
		s.Stage, s.Host = 1, 1
		s.Start, s.Duration = ts, 9*time.Millisecond
		s.Points = append(s.Points[:0],
			synopsis.PointCount{Point: 1, Count: 1},
			synopsis.PointCount{Point: 2, Count: 1},
			synopsis.PointCount{Point: 4, Count: 1},
			synopsis.PointCount{Point: 5, Count: 1})
		if i%10 == 0 { // untrained flow: log point 9 never appears in training
			s.Points = append(s.Points, synopsis.PointCount{Point: 9, Count: 1})
		}
		s.Normalize()
		eng.Feed(s)
		ts = ts.Add(20 * time.Millisecond)
	}
	eng.Flush()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	<-mu
	defer func() { mu <- struct{}{} }()
	found := false
	for _, a := range anomalies {
		for _, ex := range a.Examples {
			found = true
			// Every retained example of this burst must still carry the
			// anomalous flow; a pooled-and-rewritten alias would have been
			// reset or overwritten by a later Get.
			hasNine := false
			for _, pc := range ex.Points {
				if pc.Point == logpoint.ID(9) {
					hasNine = true
				}
			}
			if a.NewSignature && !hasNine {
				t.Fatalf("anomaly example lost its defining log point after pooling: %+v", ex)
			}
		}
	}
	if !found {
		t.Fatal("expected at least one anomaly with retained examples")
	}
}
