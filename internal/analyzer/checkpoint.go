package analyzer

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"saad/internal/logpoint"
	"saad/internal/synopsis"
)

// checkpointVersion guards the on-disk format; a mismatch fails loudly
// instead of silently misreading state.
const checkpointVersion = 1

// Checkpoint wire form: the trained model plus the detector's live state —
// every open (host, stage) window with its outlier tallies and example
// synopses, and the closed-window history for reporting. Example synopses
// reuse the canonical binary record encoding, hex-armored for JSON.
type checkpointJSON struct {
	Version int               `json:"version"`
	Model   modelJSON         `json:"model"`
	Windows []windowJSON      `json:"windows,omitempty"`
	History []windowStatsJSON `json:"history,omitempty"`
	// Late carries the dropped late-synopsis count across restarts. Old
	// checkpoints without the field read as zero; new checkpoints stay
	// readable by the same version (additive change).
	Late uint64 `json:"late,omitempty"`
}

type windowJSON struct {
	Host         uint16            `json:"host"`
	Stage        logpoint.StageID  `json:"stage"`
	StartUnixNs  int64             `json:"startUnixNs"`
	Tasks        int               `json:"tasks"`
	FlowOutliers int               `json:"flowOutliers"`
	NewSigs      []sigEvidenceJSON `json:"newSigs,omitempty"`
	FlowExamples []string          `json:"flowExamples,omitempty"`
	PerSig       []sigWindowJSON   `json:"perSig,omitempty"`
}

type sigEvidenceJSON struct {
	SignatureHex string   `json:"signature"`
	Count        int      `json:"count"`
	Examples     []string `json:"examples,omitempty"`
}

type sigWindowJSON struct {
	SignatureHex string   `json:"signature"`
	Tasks        int      `json:"tasks"`
	PerfOutliers int      `json:"perfOutliers"`
	Examples     []string `json:"examples,omitempty"`
}

type windowStatsJSON struct {
	Stage        logpoint.StageID `json:"stage"`
	Host         uint16           `json:"host"`
	WindowUnixNs int64            `json:"windowUnixNs"`
	Tasks        int              `json:"tasks"`
	FlowOutliers int              `json:"flowOutliers"`
	PerfOutliers int              `json:"perfOutliers"`
}

func encodeSynopses(in []*synopsis.Synopsis) []string {
	out := make([]string, 0, len(in))
	for _, s := range in {
		out = append(out, hex.EncodeToString(synopsis.AppendRecord(nil, s)))
	}
	return out
}

func decodeSynopses(in []string) ([]*synopsis.Synopsis, error) {
	out := make([]*synopsis.Synopsis, 0, len(in))
	for _, h := range in {
		raw, err := hex.DecodeString(h)
		if err != nil {
			return nil, fmt.Errorf("example synopsis: %w", err)
		}
		var s synopsis.Synopsis
		if err := synopsis.NewDecoder(bytes.NewReader(raw)).Decode(&s); err != nil {
			return nil, fmt.Errorf("example synopsis: %w", err)
		}
		out = append(out, &s)
	}
	return out, nil
}

// windowsJSON snapshots the detector's open windows in deterministic (host,
// stage) order. The engine reuses this per shard and merges the sections:
// group keys are unique across shards, so concatenating per-shard sections
// and sorting yields exactly a single detector's checkpoint layout.
func (d *Detector) windowsJSON() []windowJSON {
	keys := make([]groupKey, 0, len(d.open))
	for k := range d.open {
		keys = append(keys, k)
	}
	sortGroupKeys(keys)
	out := make([]windowJSON, 0, len(keys))
	for _, k := range keys {
		out = append(out, windowToJSON(d.model, k, d.open[k]))
	}
	return out
}

// windowToJSON serializes one open window in the checkpoint wire form
// (shared by whole-detector checkpoints and per-group federation handoff).
func windowToJSON(model *Model, k groupKey, ws *windowState) windowJSON {
	wj := windowJSON{
		Host:         k.host,
		Stage:        k.stage,
		StartUnixNs:  ws.start.UnixNano(),
		Tasks:        ws.tasks,
		FlowOutliers: ws.flowOutliers,
		FlowExamples: encodeSynopses(ws.flowExamples),
	}
	for _, sig := range sortedSignatures(ws.newSigs) {
		ev := ws.newSigs[sig]
		wj.NewSigs = append(wj.NewSigs, sigEvidenceJSON{
			SignatureHex: hex.EncodeToString([]byte(sig)),
			Count:        ev.count,
			Examples:     encodeSynopses(ev.examples),
		})
	}
	// Interned ids sort like their signatures, so iterating ids in
	// numeric order keeps the serialized order lexicographic.
	sm := model.Stage(k.stage)
	ids := make([]int32, 0, len(ws.perSig))
	for id := range ws.perSig {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		sw := ws.perSig[id]
		wj.PerSig = append(wj.PerSig, sigWindowJSON{
			SignatureHex: hex.EncodeToString([]byte(sm.sigByID[id].Signature)),
			Tasks:        sw.tasks,
			PerfOutliers: sw.perfOutliers,
			Examples:     encodeSynopses(sw.examples),
		})
	}
	return wj
}

// historyJSON snapshots the closed-window history in close order.
func (d *Detector) historyJSON() []windowStatsJSON {
	out := make([]windowStatsJSON, 0, len(d.stats))
	for _, st := range d.stats {
		out = append(out, windowStatsJSON{
			Stage:        st.Stage,
			Host:         st.Host,
			WindowUnixNs: st.Window.UnixNano(),
			Tasks:        st.Tasks,
			FlowOutliers: st.FlowOutliers,
			PerfOutliers: st.PerfOutliers,
		})
	}
	return out
}

// WriteCheckpoint serializes the detector — model and live window state —
// as JSON; it implements io.WriterTo. The detector can keep feeding after a
// checkpoint; nothing is consumed.
func (d *Detector) WriteCheckpoint(w io.Writer) (int64, error) {
	out := checkpointJSON{
		Version: checkpointVersion,
		Model:   d.model.toJSON(),
		Windows: d.windowsJSON(),
		History: d.historyJSON(),
		Late:    d.late,
	}
	return writeCheckpointJSON(w, out)
}

func writeCheckpointJSON(w io.Writer, out checkpointJSON) (int64, error) {
	cw := &countingWriter{w: w}
	enc := json.NewEncoder(cw)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return cw.n, fmt.Errorf("analyzer: encode checkpoint: %w", err)
	}
	return cw.n, nil
}

// ReadCheckpoint rebuilds a detector from a checkpoint previously written
// with WriteCheckpoint: same model, same open windows, same history.
func ReadCheckpoint(r io.Reader) (*Detector, error) {
	var raw checkpointJSON
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("analyzer: decode checkpoint: %w", err)
	}
	if raw.Version != checkpointVersion {
		return nil, fmt.Errorf("analyzer: checkpoint version %d, want %d", raw.Version, checkpointVersion)
	}
	model, err := modelFromJSON(raw.Model)
	if err != nil {
		return nil, err
	}
	d := NewDetector(model)
	for _, wj := range raw.Windows {
		ws, err := windowFromJSON(model, wj)
		if err != nil {
			return nil, err
		}
		d.open[groupKey{host: wj.Host, stage: wj.Stage}] = ws
	}
	for _, st := range raw.History {
		d.stats = append(d.stats, WindowStats{
			Stage:        st.Stage,
			Host:         st.Host,
			Window:       time.Unix(0, st.WindowUnixNs).UTC(),
			Tasks:        st.Tasks,
			FlowOutliers: st.FlowOutliers,
			PerfOutliers: st.PerfOutliers,
		})
	}
	d.late = raw.Late
	return d, nil
}

// windowFromJSON rebuilds one open window from its checkpoint wire form.
// The model must be the one the window was serialized against: perSig
// entries reference model-known signatures by content.
func windowFromJSON(model *Model, wj windowJSON) (*windowState, error) {
	ws := &windowState{
		start:        time.Unix(0, wj.StartUnixNs).UTC(),
		tasks:        wj.Tasks,
		flowOutliers: wj.FlowOutliers,
		newSigs:      make(map[synopsis.Signature]*sigEvidence, len(wj.NewSigs)),
		perSig:       make(map[int32]*sigWindow, len(wj.PerSig)),
	}
	var err error
	if ws.flowExamples, err = decodeSynopses(wj.FlowExamples); err != nil {
		return nil, fmt.Errorf("analyzer: checkpoint window host=%d stage=%d: %w", wj.Host, wj.Stage, err)
	}
	for _, ej := range wj.NewSigs {
		sig, examples, err := decodeSigEntry(ej.SignatureHex, ej.Examples)
		if err != nil {
			return nil, fmt.Errorf("analyzer: checkpoint window host=%d stage=%d: %w", wj.Host, wj.Stage, err)
		}
		ws.newSigs[sig] = &sigEvidence{count: ej.Count, examples: examples}
	}
	sm := model.Stage(wj.Stage)
	for _, sj := range wj.PerSig {
		sig, examples, err := decodeSigEntry(sj.SignatureHex, sj.Examples)
		if err != nil {
			return nil, fmt.Errorf("analyzer: checkpoint window host=%d stage=%d: %w", wj.Host, wj.Stage, err)
		}
		// perSig entries only ever hold model-known signatures, so a
		// miss means the checkpoint does not match its own model.
		var (
			id int32
			ok bool
		)
		if sm != nil {
			id, ok = sm.sigIDs[string(sig)]
		}
		if !ok {
			return nil, fmt.Errorf("analyzer: checkpoint window host=%d stage=%d: signature %s not in model", wj.Host, wj.Stage, sig)
		}
		ws.perSig[id] = &sigWindow{tasks: sj.Tasks, perfOutliers: sj.PerfOutliers, examples: examples}
	}
	return ws, nil
}

func decodeSigEntry(sigHex string, examples []string) (synopsis.Signature, []*synopsis.Synopsis, error) {
	sigBytes, err := hex.DecodeString(sigHex)
	if err != nil {
		return "", nil, fmt.Errorf("signature %q: %w", sigHex, err)
	}
	exs, err := decodeSynopses(examples)
	if err != nil {
		return "", nil, err
	}
	return synopsis.Signature(sigBytes), exs, nil
}

// WriteCheckpointFile atomically persists the checkpoint at path: it writes
// to a temporary file in the same directory, syncs, and renames it into
// place, so a crash mid-write never leaves a truncated checkpoint where the
// next startup would read it.
func (d *Detector) WriteCheckpointFile(path string) error {
	return writeCheckpointFileAtomic(path, func(w io.Writer) error {
		_, err := d.WriteCheckpoint(w)
		return err
	})
}

// writeCheckpointFileAtomic runs write against a same-directory temp file,
// syncs, and renames it into place (shared by Detector and Engine).
func writeCheckpointFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("analyzer: checkpoint temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := write(tmp); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("analyzer: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("analyzer: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("analyzer: install checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpointFile rebuilds a detector from a checkpoint file written by
// WriteCheckpointFile.
func LoadCheckpointFile(path string) (*Detector, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("analyzer: open checkpoint: %w", err)
	}
	defer f.Close()
	return ReadCheckpoint(f)
}

// sortGroupKeys orders keys by host then stage for deterministic output.
func sortGroupKeys(keys []groupKey) {
	for i := 1; i < len(keys); i++ { // insertion sort; open-window counts are small
		for j := i; j > 0 && lessGroupKey(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}

func lessGroupKey(a, b groupKey) bool {
	if a.host != b.host {
		return a.host < b.host
	}
	return a.stage < b.stage
}

// sortedSignatures returns the map's keys in lexicographic order.
func sortedSignatures[V any](m map[synopsis.Signature]V) []synopsis.Signature {
	out := make([]synopsis.Signature, 0, len(m))
	for sig := range m {
		out = append(out, sig)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
