package analyzer

import (
	"testing"
	"time"

	"saad/internal/logpoint"
	"saad/internal/synopsis"
	"saad/internal/vtime"
)

// driftTrace builds a detection trace adding `extra` forced perf outliers
// on top of the signature's natural ~1% share.
func driftTrace(t *testing.T, model *Model, extra float64, n int) []*synopsis.Synopsis {
	t.Helper()
	rng := vtime.NewRNG(31)
	var out []*synopsis.Synopsis
	ts := epoch
	sig := synopsis.Compute([]logpoint.ID{1, 2, 4, 5})
	threshold := model.Stage(1).Signatures[sig].DurationThreshold
	for i := 0; i < n; i++ {
		dur := 9*time.Millisecond + time.Duration(rng.Intn(int(2*time.Millisecond)))
		if rng.Bool(extra) {
			dur = threshold + time.Millisecond
		}
		out = append(out, makeSyn(1, 1, ts, dur, 1, 2, 4, 5))
		ts = ts.Add(time.Millisecond)
	}
	return out
}

func TestMinEffectSuppressesTinyDrifts(t *testing.T) {
	model := trainedModel(t)
	// An extra outlier share of a quarter MinEffect: statistically
	// significant at these window sizes, but below the practical-
	// significance gate even on top of the natural ~1%.
	small := driftTrace(t, model, model.Config.MinEffect/4, 5000)
	det := NewDetector(model)
	anoms := feedAll(det, small)
	for _, a := range anoms {
		if a.Kind == PerformanceAnomaly {
			t.Fatalf("sub-MinEffect drift alarmed: %+v", a)
		}
	}

	// A drift well above the gate must alarm.
	big := driftTrace(t, model, 4*model.Config.MinEffect, 5000)
	det = NewDetector(model)
	found := false
	for _, a := range feedAll(det, big) {
		if a.Kind == PerformanceAnomaly {
			found = true
		}
	}
	if !found {
		t.Fatal("super-MinEffect drift not detected")
	}
}

func TestSmallWindowsNeverAlarmOnPerf(t *testing.T) {
	model := trainedModel(t)
	det := NewDetector(model)
	// One extremely slow task alone in its window: df = 0, no alarm.
	syns := []*synopsis.Synopsis{
		makeSyn(1, 1, epoch, time.Second, 1, 2, 4, 5),
		makeSyn(1, 1, epoch.Add(5*model.Config.Window), 10*time.Millisecond, 1, 2, 4, 5),
	}
	for _, a := range feedAll(det, syns) {
		if a.Kind == PerformanceAnomaly {
			t.Fatalf("n=1 window alarmed: %+v", a)
		}
	}
}

func TestPerfBaselineFloored(t *testing.T) {
	// A training set with tied durations: the empirical share above the
	// p99 threshold is 0. A single slow task in a small window must not
	// alarm thanks to the floored baseline + t-test.
	var trace []*synopsis.Synopsis
	ts := epoch
	for i := 0; i < 1000; i++ {
		trace = append(trace, makeSyn(1, 1, ts, 10*time.Millisecond, 1, 2))
		ts = ts.Add(time.Millisecond)
	}
	model, err := Train(DefaultConfig(), trace)
	if err != nil {
		t.Fatal(err)
	}
	sig := synopsis.Compute([]logpoint.ID{1, 2})
	if got := model.Stage(1).Signatures[sig].PerfTrainShare; got != 0 {
		t.Fatalf("tied durations PerfTrainShare = %v, want 0", got)
	}
	det := NewDetector(model)
	syns := []*synopsis.Synopsis{
		makeSyn(1, 1, epoch.Add(time.Hour), 50*time.Millisecond, 1, 2),
		makeSyn(1, 1, epoch.Add(2*time.Hour), 10*time.Millisecond, 1, 2),
	}
	for _, a := range feedAll(det, syns) {
		if a.Kind == PerformanceAnomaly {
			t.Fatalf("single slow task over a zero baseline alarmed: %+v", a)
		}
	}
	// A full window of slow tasks still alarms despite the floor.
	var slow []*synopsis.Synopsis
	ts = epoch.Add(24 * time.Hour)
	for i := 0; i < 500; i++ {
		slow = append(slow, makeSyn(1, 1, ts, 50*time.Millisecond, 1, 2))
		ts = ts.Add(time.Millisecond)
	}
	det = NewDetector(model)
	found := false
	for _, a := range feedAll(det, slow) {
		if a.Kind == PerformanceAnomaly {
			found = true
		}
	}
	if !found {
		t.Fatal("sustained slowdown over a zero baseline not detected")
	}
}
