package analyzer

import (
	"reflect"
	"testing"

	"saad/internal/logpoint"
)

// TestExportImportEquivalence is the single-process version of the
// federation handoff proof: a stream split across two engines — with half
// the groups MOVED from one engine to the other mid-stream via
// ExportGroups/ImportGroups — must produce exactly the anomalies of one
// engine fed the whole stream, after the canonical merge sort.
func TestExportImportEquivalence(t *testing.T) {
	model := trainedModel(t)
	stream := multiGroupStream(4)

	ref := NewEngine(model, WithShards(4))
	for _, s := range stream {
		ref.Feed(s)
	}
	want := ref.Flush()
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("reference run produced no anomalies; the stream should trip detections")
	}

	// Phase 1: engine A owns everything and sees 60% of the stream.
	a := NewEngine(model, WithShards(3))
	b := NewEngine(model, WithShards(2)) // shard counts deliberately differ
	cut := len(stream) * 6 / 10
	for _, s := range stream[:cut] {
		a.Feed(s)
	}
	// Barrier: everything fed is observed before the export. Drain returns
	// (and clears) phase-1 anomalies, so they join the merged output.
	got := a.Drain()

	// Handoff: odd hosts move to engine B with their open-window state.
	moved := func(host uint16, stage logpoint.StageID) bool { return host%2 == 1 }
	blob, n, err := a.ExportGroups(moved)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no groups exported; odd hosts must have open windows at the cut")
	}
	imported, err := b.ImportGroups(blob)
	if err != nil {
		t.Fatal(err)
	}
	if imported != n {
		t.Fatalf("imported %d groups, exported %d", imported, n)
	}

	// Phase 2: the remainder routes by the new ownership.
	for _, s := range stream[cut:] {
		if moved(s.Host, s.Stage) {
			b.Feed(s)
		} else {
			a.Feed(s)
		}
	}
	got = append(got, a.Flush()...)
	got = append(got, b.Flush()...)
	SortAnomalies(got)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	if g, w := summarize(got), summarize(want); !reflect.DeepEqual(g, w) {
		t.Fatalf("split run (%d anomalies) diverges from reference (%d):\n got %v\nwant %v", len(g), len(w), g, w)
	}
}

// TestImportGroupsConflict pins the ownership invariant: importing a group
// that already has an open window locally must fail without adopting any
// state.
func TestImportGroupsConflict(t *testing.T) {
	model := trainedModel(t)
	stream := multiGroupStream(2)
	cut := len(stream) / 2

	a := NewEngine(model, WithShards(2))
	defer a.Close()
	b := NewEngine(model, WithShards(2))
	defer b.Close()
	for _, s := range stream[:cut] {
		a.Feed(s)
		b.Feed(s) // b opens the same groups
	}
	a.Drain()
	b.Drain()

	blob, n, err := a.ExportGroups(func(uint16, logpoint.StageID) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing exported")
	}
	if _, err := b.ImportGroups(blob); err == nil {
		t.Fatal("conflicting import succeeded")
	}
	// A's windows are gone (moved out), so a re-import into a fresh engine
	// still works: the failed import must not have consumed the blob.
	c := NewEngine(model, WithShards(1))
	defer c.Close()
	if m, err := c.ImportGroups(blob); err != nil || m != n {
		t.Fatalf("import into fresh engine: n=%d err=%v", m, err)
	}
	if groups := c.OpenGroups(); len(groups) != n {
		t.Fatalf("fresh engine has %d open groups, want %d", len(groups), n)
	}
}

// TestExportGroupsSelective checks only selected groups move and the rest
// keep detecting in place.
func TestExportGroupsSelective(t *testing.T) {
	model := trainedModel(t)
	e := NewEngine(model, WithShards(2))
	defer e.Close()
	stream := multiGroupStream(3)
	for _, s := range stream[:len(stream)/2] {
		e.Feed(s)
	}
	e.Drain()
	before := e.OpenGroups()
	if len(before) == 0 {
		t.Fatal("no open groups")
	}
	_, n, err := e.ExportGroups(func(host uint16, _ logpoint.StageID) bool { return host == 2 })
	if err != nil {
		t.Fatal(err)
	}
	after := e.OpenGroups()
	if len(after) != len(before)-n {
		t.Fatalf("open groups %d -> %d after exporting %d", len(before), len(after), n)
	}
	for _, g := range after {
		if g.Host == 2 {
			t.Fatalf("host 2 group %v still open after export", g)
		}
	}
}
