// Package analyzer implements SAAD's stage-aware statistical analyzer
// (paper Section 3.3): feature creation from task synopses, training of the
// outlier model from a fault-free trace, and windowed online detection of
// flow and performance anomalies via one-sided proportion tests.
package analyzer

import (
	"fmt"
	"time"
)

// Config holds the analyzer's statistical knobs. The defaults are the
// paper's settings: 99th-percentile outlier thresholds, significance 0.001,
// k = 5 cross-validation folds.
type Config struct {
	// FlowPercentile is the percentile-rank threshold for flow outliers: a
	// signature accounting for less than (100 - FlowPercentile)% of a
	// stage's tasks is a flow outlier (paper Section 3.3.2). Default 99.
	FlowPercentile float64
	// DurationPercentile is the per-(stage, signature) duration percentile
	// used as the performance-outlier threshold. Default 99.
	DurationPercentile float64
	// Alpha is the significance level of the anomaly-detection proportion
	// tests. Default 0.001.
	Alpha float64
	// KFolds is the number of cross-validation folds used to discard
	// signatures whose duration distribution does not support a stable
	// percentile threshold. Default 5.
	KFolds int
	// DiscardFactor: a signature is discarded for performance detection
	// when its mean held-out outlier proportion exceeds DiscardFactor times
	// the nominal proportion (100 - DurationPercentile)/100. Default 3.
	DiscardFactor float64
	// MinTasksPerSignature is the minimum number of training tasks a
	// signature needs before a duration threshold is trusted. Default 20.
	MinTasksPerSignature int
	// Window is the detection window the online detector aggregates over
	// before running its statistical tests. Default 1 minute.
	Window time.Duration
	// UseTTest selects the Student-t variant of the proportion test
	// instead of the normal approximation. Default true, matching the
	// paper's t-test: for the large windows of the evaluation the two are
	// identical, but the t variant correctly refuses to alarm on the
	// tiny-population windows that periodic background stages produce.
	UseTTest bool
	// MinEffect is the minimum absolute increase over the training
	// proportion required before a rejecting test is reported: with the
	// large window populations the simulated servers produce, the tests
	// have enough power to flag one-percent drifts that no operator would
	// act on (and that the paper's pipeline demonstrably does not flag —
	// its delay-WAL-low bars stay flat). Default 0.02.
	MinEffect float64
	// MaxExamples bounds how many sample outlier synopses are attached to
	// each reported anomaly for root-cause inspection. Default 3.
	MaxExamples int
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{
		FlowPercentile:       99,
		DurationPercentile:   99,
		Alpha:                0.001,
		KFolds:               5,
		DiscardFactor:        3,
		MinTasksPerSignature: 20,
		Window:               time.Minute,
		MaxExamples:          3,
		MinEffect:            0.02,
		UseTTest:             true,
	}
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if c.FlowPercentile <= 0 || c.FlowPercentile >= 100 {
		return fmt.Errorf("analyzer: FlowPercentile %v outside (0, 100)", c.FlowPercentile)
	}
	if c.DurationPercentile <= 0 || c.DurationPercentile >= 100 {
		return fmt.Errorf("analyzer: DurationPercentile %v outside (0, 100)", c.DurationPercentile)
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return fmt.Errorf("analyzer: Alpha %v outside (0, 1)", c.Alpha)
	}
	if c.KFolds < 2 {
		return fmt.Errorf("analyzer: KFolds %d < 2", c.KFolds)
	}
	if c.DiscardFactor <= 0 {
		return fmt.Errorf("analyzer: DiscardFactor %v <= 0", c.DiscardFactor)
	}
	if c.MinTasksPerSignature < 1 {
		return fmt.Errorf("analyzer: MinTasksPerSignature %d < 1", c.MinTasksPerSignature)
	}
	if c.Window <= 0 {
		return fmt.Errorf("analyzer: Window %v <= 0", c.Window)
	}
	if c.MaxExamples < 0 {
		return fmt.Errorf("analyzer: MaxExamples %d < 0", c.MaxExamples)
	}
	if c.MinEffect < 0 || c.MinEffect >= 1 {
		return fmt.Errorf("analyzer: MinEffect %v outside [0, 1)", c.MinEffect)
	}
	return nil
}

// nominalPerfOutlierShare is the expected share of tasks above the duration
// threshold under the training distribution.
func (c Config) nominalPerfOutlierShare() float64 {
	return (100 - c.DurationPercentile) / 100
}

// flowOutlierShare is the per-signature share below which a signature is a
// flow outlier.
func (c Config) flowOutlierShare() float64 {
	return (100 - c.FlowPercentile) / 100
}
