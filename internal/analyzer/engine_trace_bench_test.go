package analyzer

import (
	"testing"
	"time"

	"saad/internal/synopsis"
	"saad/internal/trace"
)

// engineTraceBenchStream builds a reusable healthy stream, optionally with
// spans attached to every synopsis.
func engineTraceBenchStream(n int, traced bool) []*synopsis.Synopsis {
	ts := epoch
	out := make([]*synopsis.Synopsis, 0, n)
	for i := 0; i < n; i++ {
		s := makeSyn(1, 1, ts, 10*time.Millisecond, 1, 2, 4, 5)
		if traced {
			now := time.Now().UnixNano()
			s.Trace = &trace.Span{Stage: 1, Host: 1, TaskID: s.TaskID, Emit: now - 2, Send: now - 1, Recv: now}
		}
		ts = ts.Add(30 * time.Millisecond)
		out = append(out, s)
	}
	return out
}

func benchEngineFeed(b *testing.B, eng *Engine, feed []*synopsis.Synopsis) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	fed := 0
	for fed < b.N {
		n := len(feed)
		if rest := b.N - fed; rest < n {
			n = rest
		}
		eng.FeedBatch(feed[:n])
		fed += n
	}
	eng.Drain()
}

// BenchmarkEngineFeedTracerOff: tracer attached, no synopsis sampled. The
// trace touch points must stay nil-pointer checks — zero allocations, same
// as an engine without a tracer.
func BenchmarkEngineFeedTracerOff(b *testing.B) {
	eng := NewEngine(trainedModel(b), WithShards(2),
		WithEngineTracer(trace.New(trace.Config{SampleEvery: 1})))
	defer eng.Close()
	benchEngineFeed(b, eng, engineTraceBenchStream(4096, false))
}

// BenchmarkEngineFeedTraced: every synopsis carries a span — the
// per-sampled-synopsis cost of stamping, flight recording, span retention
// and the latency histogram.
func BenchmarkEngineFeedTraced(b *testing.B) {
	eng := NewEngine(trainedModel(b), WithShards(2),
		WithEngineTracer(trace.New(trace.Config{SampleEvery: 1})))
	defer eng.Close()
	benchEngineFeed(b, eng, engineTraceBenchStream(4096, true))
}
