package analyzer

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"saad/internal/logpoint"
	"saad/internal/synopsis"
	"saad/internal/vtime"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// makeSyn builds a normalized synopsis for stage with the given log points
// and duration.
func makeSyn(stage logpoint.StageID, host uint16, start time.Time, dur time.Duration, pts ...logpoint.ID) *synopsis.Synopsis {
	s := &synopsis.Synopsis{Stage: stage, Host: host, Start: start, Duration: dur}
	for _, p := range pts {
		s.Points = append(s.Points, synopsis.PointCount{Point: p, Count: 1})
	}
	s.Normalize()
	return s
}

// trainTrace builds a trace for one stage: `common` tasks with signature
// {1,2,4,5} and lognormal-ish durations around base, plus `rare` tasks with
// signature {1,2,3,4,5} — the Figure 4 scenario.
func trainTrace(stage logpoint.StageID, common, rare int, base time.Duration) []*synopsis.Synopsis {
	rng := vtime.NewRNG(1234)
	var out []*synopsis.Synopsis
	t := epoch
	for i := 0; i < common; i++ {
		d := base + time.Duration(rng.Intn(int(base/2)))
		out = append(out, makeSyn(stage, 1, t, d, 1, 2, 4, 5))
		t = t.Add(10 * time.Millisecond)
	}
	for i := 0; i < rare; i++ {
		d := base + time.Duration(rng.Intn(int(base/2)))
		out = append(out, makeSyn(stage, 1, t, d, 1, 2, 3, 4, 5))
		t = t.Add(10 * time.Millisecond)
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.FlowPercentile = 0 },
		func(c *Config) { c.FlowPercentile = 100 },
		func(c *Config) { c.DurationPercentile = -1 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Alpha = 1 },
		func(c *Config) { c.KFolds = 1 },
		func(c *Config) { c.DiscardFactor = 0 },
		func(c *Config) { c.MinTasksPerSignature = 0 },
		func(c *Config) { c.Window = 0 },
		func(c *Config) { c.MaxExamples = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestTrainEmptyTrace(t *testing.T) {
	if _, err := Train(DefaultConfig(), nil); !errors.Is(err, ErrEmptyTrace) {
		t.Fatalf("err = %v", err)
	}
}

func TestTrainRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Alpha = 5
	if _, err := Train(cfg, trainTrace(1, 10, 0, time.Millisecond)); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestTrainFlowOutlierClassification(t *testing.T) {
	// 9990 common + 10 rare: rare share 0.1% < 1% threshold.
	trace := trainTrace(7, 9990, 10, 10*time.Millisecond)
	model, err := Train(DefaultConfig(), trace)
	if err != nil {
		t.Fatal(err)
	}
	sm := model.Stage(7)
	if sm == nil {
		t.Fatal("stage missing")
	}
	if sm.Total != 10000 {
		t.Fatalf("total = %d", sm.Total)
	}
	commonSig := synopsis.Compute([]logpoint.ID{1, 2, 4, 5})
	rareSig := synopsis.Compute([]logpoint.ID{1, 2, 3, 4, 5})
	if sm.Signatures[commonSig].FlowOutlier {
		t.Fatal("common signature classified as outlier")
	}
	if !sm.Signatures[rareSig].FlowOutlier {
		t.Fatal("rare signature not classified as outlier")
	}
	if got := sm.FlowOutlierShare; got < 0.0009 || got > 0.0011 {
		t.Fatalf("FlowOutlierShare = %v, want ~0.001", got)
	}
	if !model.Knows(7, commonSig) || model.Knows(7, synopsis.Compute([]logpoint.ID{9})) {
		t.Fatal("Knows misbehaves")
	}
	if model.Knows(9, commonSig) {
		t.Fatal("Knows true for unseen stage")
	}
}

func TestTrainDurationThreshold(t *testing.T) {
	// Durations covering 1..1000us uniformly but arriving in a scrambled,
	// stationary order (37 is coprime with 1000, so i*37 mod 1000 visits
	// every value once): the 99th percentile must land near 990us.
	var trace []*synopsis.Synopsis
	for i := 1; i <= 1000; i++ {
		v := (i*37)%1000 + 1
		trace = append(trace, makeSyn(1, 0, epoch.Add(time.Duration(i)*time.Millisecond),
			time.Duration(v)*time.Microsecond, 1, 2))
	}
	model, err := Train(DefaultConfig(), trace)
	if err != nil {
		t.Fatal(err)
	}
	sig := synopsis.Compute([]logpoint.ID{1, 2})
	sm := model.Stage(1).Signatures[sig]
	if sm.DurationThreshold < 980*time.Microsecond || sm.DurationThreshold > 995*time.Microsecond {
		t.Fatalf("threshold = %v, want ~990us", sm.DurationThreshold)
	}
	if !sm.PerfEligible {
		t.Fatalf("uniform distribution discarded by CV: cvShare=%v", sm.CVOutlierShare)
	}
	if sm.PerfTrainShare < 0.005 || sm.PerfTrainShare > 0.015 {
		t.Fatalf("PerfTrainShare = %v, want ~0.01", sm.PerfTrainShare)
	}
}

func TestTrainSmallSignatureNotPerfEligible(t *testing.T) {
	trace := trainTrace(1, 10, 0, time.Millisecond) // below MinTasksPerSignature
	model, err := Train(DefaultConfig(), trace)
	if err != nil {
		t.Fatal(err)
	}
	sig := synopsis.Compute([]logpoint.ID{1, 2, 4, 5})
	if model.Stage(1).Signatures[sig].PerfEligible {
		t.Fatal("tiny signature perf-eligible")
	}
}

func TestTrainKFoldDiscardsUnstableDurations(t *testing.T) {
	// A duration distribution that shifts drastically across the trace:
	// the first 80% sits near 1ms, the last 20% near 100ms. The threshold
	// learned without the tail fold misclassifies that fold wholesale, so
	// CV must discard the signature. Noise keeps values strictly distinct.
	rng := vtime.NewRNG(3)
	var trace []*synopsis.Synopsis
	for i := 0; i < 200; i++ {
		d := time.Millisecond + time.Duration(rng.Intn(int(time.Millisecond/2)))
		if i >= 160 {
			d = 100*time.Millisecond + time.Duration(rng.Intn(int(50*time.Millisecond)))
		}
		trace = append(trace, makeSyn(1, 0, epoch.Add(time.Duration(i)*time.Second), d, 1))
	}
	model, err := Train(DefaultConfig(), trace)
	if err != nil {
		t.Fatal(err)
	}
	sig := synopsis.Compute([]logpoint.ID{1})
	sm := model.Stage(1).Signatures[sig]
	if sm.PerfEligible {
		t.Fatalf("unstable signature kept: cvShare=%v", sm.CVOutlierShare)
	}
	if sm.CVOutlierShare <= model.Config.DiscardFactor*model.Config.nominalPerfOutlierShare() {
		t.Fatalf("cvShare = %v unexpectedly small", sm.CVOutlierShare)
	}
}

func TestSortedSignaturesDescending(t *testing.T) {
	trace := trainTrace(1, 500, 30, time.Millisecond)
	model, err := Train(DefaultConfig(), trace)
	if err != nil {
		t.Fatal(err)
	}
	sigs := model.Stage(1).SortedSignatures()
	if len(sigs) != 2 {
		t.Fatalf("signatures = %d", len(sigs))
	}
	if sigs[0].Count < sigs[1].Count {
		t.Fatal("not sorted by descending count")
	}
}

func TestTrainerIncremental(t *testing.T) {
	tr, err := NewTrainer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range trainTrace(2, 100, 0, time.Millisecond) {
		tr.Add(s)
	}
	if tr.Count() != 100 {
		t.Fatalf("Count = %d", tr.Count())
	}
	model, err := tr.Train()
	if err != nil {
		t.Fatal(err)
	}
	if model.TrainedOn != 100 {
		t.Fatalf("TrainedOn = %d", model.TrainedOn)
	}
}

func TestModelSerializeRoundTrip(t *testing.T) {
	trace := trainTrace(3, 2000, 15, 5*time.Millisecond)
	model, err := Train(DefaultConfig(), trace)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := model.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.TrainedOn != model.TrainedOn {
		t.Fatalf("TrainedOn = %d", got.TrainedOn)
	}
	if got.Config.Window != model.Config.Window || got.Config.Alpha != model.Config.Alpha {
		t.Fatalf("config = %+v", got.Config)
	}
	wantStage := model.Stage(3)
	gotStage := got.Stage(3)
	if gotStage == nil || gotStage.Total != wantStage.Total {
		t.Fatalf("stage = %+v", gotStage)
	}
	for sig, want := range wantStage.Signatures {
		g := gotStage.Signatures[sig]
		if g == nil {
			t.Fatalf("signature %v lost", sig)
		}
		if g.Count != want.Count || g.FlowOutlier != want.FlowOutlier ||
			g.DurationThreshold != want.DurationThreshold ||
			g.PerfEligible != want.PerfEligible {
			t.Fatalf("signature %v = %+v, want %+v", sig, g, want)
		}
	}
}

func TestReadModelRejectsBadInput(t *testing.T) {
	if _, err := ReadModel(strings.NewReader("nope")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadModel(strings.NewReader(`{"config":{}}`)); err == nil {
		t.Fatal("zero config accepted")
	}
	bad := `{"config":{"flowPercentile":99,"durationPercentile":99,"alpha":0.001,"kFolds":5,` +
		`"discardFactor":3,"minTasksPerSignature":20,"windowMillis":60000,"maxExamples":3},` +
		`"stages":[{"stage":1,"signatures":[{"signature":"zz"}]}]}`
	if _, err := ReadModel(strings.NewReader(bad)); err == nil {
		t.Fatal("bad hex signature accepted")
	}
}
