package analyzer

import (
	"time"

	"saad/internal/logpoint"
)

// AlarmFilter implements the de-bouncing extension the paper sketches in
// its false-positive analysis (Section 5.6): because fault-driven anomalies
// arrive in bursts an order of magnitude above the background rate,
// "filtering out spurious false alarms can be easily added". The filter
// passes an anomaly through only when the same (host, stage, kind) group
// has alarmed in at least MinWindows of the last Span windows, suppressing
// the isolated single-window alarms that natural variability produces.
//
// AlarmFilter is not safe for concurrent use; feed it from the detector's
// goroutine.
type AlarmFilter struct {
	// MinWindows is the number of distinct alarming windows required
	// within Span before anomalies pass. Default 2.
	MinWindows int
	// Span is the sliding range considered. Default 3 windows.
	Span int
	// Window is the detector's window length (used to compare window
	// starts). Required.
	Window time.Duration

	recent map[filterKey][]time.Time
	// held buffers the first anomalies of a burst so that, once the burst
	// is confirmed, the initial evidence is not lost.
	held map[filterKey][]Anomaly
}

type filterKey struct {
	host  uint16
	stage logpoint.StageID
	kind  AnomalyKind
}

// NewAlarmFilter returns a filter with the given thresholds; minWindows
// and span are clamped to at least 1 (a 1/1 filter passes everything).
func NewAlarmFilter(minWindows, span int, window time.Duration) *AlarmFilter {
	if minWindows < 1 {
		minWindows = 1
	}
	if span < minWindows {
		span = minWindows
	}
	if window <= 0 {
		window = time.Minute
	}
	return &AlarmFilter{
		MinWindows: minWindows,
		Span:       span,
		Window:     window,
		recent:     make(map[filterKey][]time.Time),
		held:       make(map[filterKey][]Anomaly),
	}
}

// Filter consumes anomalies (typically a Detector.Feed return value) and
// returns those that pass the persistence requirement, including any
// previously held anomalies of a newly confirmed burst.
func (f *AlarmFilter) Filter(anomalies []Anomaly) []Anomaly {
	var out []Anomaly
	for _, a := range anomalies {
		key := filterKey{host: a.Host, stage: a.Stage, kind: a.Kind}

		// Record this window (once) for the group.
		windows := f.recent[key]
		if len(windows) == 0 || !windows[len(windows)-1].Equal(a.Window) {
			windows = append(windows, a.Window)
		}
		// Expire windows older than Span.
		horizon := a.Window.Add(-time.Duration(f.Span-1) * f.Window)
		keep := windows[:0]
		for _, w := range windows {
			if !w.Before(horizon) {
				keep = append(keep, w)
			}
		}
		f.recent[key] = keep

		if len(keep) >= f.MinWindows {
			// Burst confirmed: release held evidence first.
			out = append(out, f.held[key]...)
			delete(f.held, key)
			out = append(out, a)
		} else {
			f.held[key] = append(f.held[key], a)
		}
	}
	return out
}

// Suppressed returns the number of anomalies currently held back across all
// groups (evidence of unconfirmed single-window alarms).
func (f *AlarmFilter) Suppressed() int {
	n := 0
	for _, h := range f.held {
		n += len(h)
	}
	return n
}
