package analyzer

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"saad/internal/logpoint"
	"saad/internal/synopsis"
)

// JSON wire form of a trained model, with signatures hex-encoded (they are
// arbitrary byte strings).
type modelJSON struct {
	Config    configJSON  `json:"config"`
	TrainedOn int         `json:"trainedOn"`
	Stages    []stageJSON `json:"stages"`
}

type configJSON struct {
	FlowPercentile       float64 `json:"flowPercentile"`
	DurationPercentile   float64 `json:"durationPercentile"`
	Alpha                float64 `json:"alpha"`
	KFolds               int     `json:"kFolds"`
	DiscardFactor        float64 `json:"discardFactor"`
	MinTasksPerSignature int     `json:"minTasksPerSignature"`
	WindowMillis         int64   `json:"windowMillis"`
	UseTTest             bool    `json:"useTTest"`
	MaxExamples          int     `json:"maxExamples"`
	MinEffect            float64 `json:"minEffect"`
}

type stageJSON struct {
	Stage            logpoint.StageID `json:"stage"`
	Total            int              `json:"total"`
	FlowOutlierShare float64          `json:"flowOutlierShare"`
	Signatures       []sigJSON        `json:"signatures"`
}

type sigJSON struct {
	SignatureHex   string  `json:"signature"`
	Count          int     `json:"count"`
	Share          float64 `json:"share"`
	FlowOutlier    bool    `json:"flowOutlier"`
	DurThresholdUs int64   `json:"durationThresholdUs"`
	DurThresholdNs int64   `json:"durationThresholdNs,omitempty"`
	PerfTrainShare float64 `json:"perfTrainShare"`
	PerfEligible   bool    `json:"perfEligible"`
	CVOutlierShare float64 `json:"cvOutlierShare"`
	Skewness       float64 `json:"skewness"`
}

// toJSON converts the model to its JSON wire form; shared by WriteTo and
// the detector checkpoint.
func (m *Model) toJSON() modelJSON {
	out := modelJSON{
		Config: configJSON{
			FlowPercentile:       m.Config.FlowPercentile,
			DurationPercentile:   m.Config.DurationPercentile,
			Alpha:                m.Config.Alpha,
			KFolds:               m.Config.KFolds,
			DiscardFactor:        m.Config.DiscardFactor,
			MinTasksPerSignature: m.Config.MinTasksPerSignature,
			WindowMillis:         m.Config.Window.Milliseconds(),
			UseTTest:             m.Config.UseTTest,
			MaxExamples:          m.Config.MaxExamples,
			MinEffect:            m.Config.MinEffect,
		},
		TrainedOn: m.TrainedOn,
	}
	for _, stageID := range sortedStageIDs(m.Stages) {
		sm := m.Stages[stageID]
		sj := stageJSON{Stage: sm.Stage, Total: sm.Total, FlowOutlierShare: sm.FlowOutlierShare}
		for _, sig := range sm.SortedSignatures() {
			sj.Signatures = append(sj.Signatures, sigJSON{
				SignatureHex:   hex.EncodeToString([]byte(sig.Signature)),
				Count:          sig.Count,
				Share:          sig.Share,
				FlowOutlier:    sig.FlowOutlier,
				DurThresholdUs: sig.DurationThreshold.Microseconds(),
				DurThresholdNs: int64(sig.DurationThreshold),
				PerfTrainShare: sig.PerfTrainShare,
				PerfEligible:   sig.PerfEligible,
				CVOutlierShare: sig.CVOutlierShare,
				Skewness:       sig.Skewness,
			})
		}
		out.Stages = append(out.Stages, sj)
	}
	return out
}

// WriteTo serializes the model as JSON; it implements io.WriterTo.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	enc := json.NewEncoder(cw)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m.toJSON()); err != nil {
		return cw.n, fmt.Errorf("analyzer: encode model: %w", err)
	}
	return cw.n, nil
}

// ReadModel parses a model previously written with WriteTo.
func ReadModel(r io.Reader) (*Model, error) {
	var raw modelJSON
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("analyzer: decode model: %w", err)
	}
	return modelFromJSON(raw)
}

// modelFromJSON rebuilds a model from its JSON wire form; shared by
// ReadModel and the detector checkpoint.
func modelFromJSON(raw modelJSON) (*Model, error) {
	cfg := Config{
		FlowPercentile:       raw.Config.FlowPercentile,
		DurationPercentile:   raw.Config.DurationPercentile,
		Alpha:                raw.Config.Alpha,
		KFolds:               raw.Config.KFolds,
		DiscardFactor:        raw.Config.DiscardFactor,
		MinTasksPerSignature: raw.Config.MinTasksPerSignature,
		Window:               time.Duration(raw.Config.WindowMillis) * time.Millisecond,
		UseTTest:             raw.Config.UseTTest,
		MaxExamples:          raw.Config.MaxExamples,
		MinEffect:            raw.Config.MinEffect,
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{Config: cfg, TrainedOn: raw.TrainedOn, Stages: make(map[logpoint.StageID]*StageModel, len(raw.Stages))}
	for _, sj := range raw.Stages {
		sm := &StageModel{
			Stage:            sj.Stage,
			Total:            sj.Total,
			FlowOutlierShare: sj.FlowOutlierShare,
			Signatures:       make(map[synopsis.Signature]*SignatureModel, len(sj.Signatures)),
		}
		for _, gj := range sj.Signatures {
			sigBytes, err := hex.DecodeString(gj.SignatureHex)
			if err != nil {
				return nil, fmt.Errorf("analyzer: stage %d signature %q: %w", sj.Stage, gj.SignatureHex, err)
			}
			sig := synopsis.Signature(sigBytes)
			// Newer files carry the threshold at nanosecond precision;
			// older ones only have the truncated microsecond field.
			thr := time.Duration(gj.DurThresholdNs)
			if thr == 0 {
				thr = time.Duration(gj.DurThresholdUs) * time.Microsecond
			}
			sm.Signatures[sig] = &SignatureModel{
				Signature:         sig,
				Count:             gj.Count,
				Share:             gj.Share,
				FlowOutlier:       gj.FlowOutlier,
				DurationThreshold: thr,
				PerfTrainShare:    gj.PerfTrainShare,
				PerfEligible:      gj.PerfEligible,
				CVOutlierShare:    gj.CVOutlierShare,
				Skewness:          gj.Skewness,
			}
		}
		m.Stages[sj.Stage] = sm
	}
	return m, nil
}

func sortedStageIDs(m map[logpoint.StageID]*StageModel) []logpoint.StageID {
	out := make([]logpoint.StageID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ { // insertion sort; stage counts are small
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
