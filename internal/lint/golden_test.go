package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestGolden proves every analyzer both fires on its seeded-violation
// fixture and stays silent on its clean twin. Each analyzer owns a
// testdata/src/<name>/{bad,clean} pair; expectations live in the fixtures
// as `// want "regex"` comments (double- or backquoted, several per line
// allowed), matched by file and line against "analyzer: message". The
// special corpus "directive" runs with no analyzers and exercises the
// runner's own malformed-directive reporting.
func TestGolden(t *testing.T) {
	srcRoot := filepath.Join("testdata", "src")
	entries, err := os.ReadDir(srcRoot)
	if err != nil {
		t.Fatal(err)
	}

	var dirs []string
	covered := make(map[string]bool)
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		covered[e.Name()] = true
		for _, variant := range []string{"bad", "clean"} {
			dir := filepath.Join(srcRoot, e.Name(), variant)
			if _, err := os.Stat(dir); err != nil {
				t.Fatalf("analyzer %s lacks a %s fixture: %v", e.Name(), variant, err)
			}
			dirs = append(dirs, dir)
		}
	}
	// Every registered analyzer must have a corpus — a new analyzer without
	// golden coverage fails here, not in review.
	for _, a := range All() {
		if !covered[a.Name] {
			t.Errorf("analyzer %s has no golden corpus under %s", a.Name, srcRoot)
		}
	}

	// One Load shares a single source importer across all fixtures so each
	// dependency is type-checked once.
	pkgs, err := Load(LoadConfig{Root: "."}, dirs...)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != len(dirs) {
		t.Fatalf("loaded %d packages from %d fixture dirs", len(pkgs), len(dirs))
	}

	for _, pkg := range pkgs {
		rel, err := filepath.Rel(srcRoot, pkg.Dir)
		if err != nil {
			t.Fatal(err)
		}
		parts := strings.SplitN(filepath.ToSlash(rel), "/", 2)
		name, variant := parts[0], parts[1]
		t.Run(name+"/"+variant, func(t *testing.T) {
			var analyzers []*Analyzer
			if name != "directive" {
				sel, bad, ok := ByName([]string{name})
				if !ok {
					t.Fatalf("fixture dir names unknown analyzer %q", bad)
				}
				analyzers = sel
			}
			diags, err := Run([]*Package{pkg}, analyzers)
			if err != nil {
				t.Fatal(err)
			}
			wants := parseWants(t, pkg)
			if variant == "clean" && len(wants) > 0 {
				t.Fatalf("clean fixture carries want comments")
			}
			if variant == "bad" && len(wants) == 0 {
				t.Fatalf("bad fixture carries no want comments")
			}
			for _, d := range diags {
				rendered := d.Analyzer + ": " + d.Message
				matched := false
				for _, w := range wants {
					if !w.matched && w.file == d.File && w.line == d.Line && w.re.MatchString(rendered) {
						w.matched = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.re)
				}
			}
		})
	}
}

// want is one `// want "regex"` expectation pinned to a fixture line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantMarker finds the start of a want expectation inside a comment; the
// quoted regexes follow immediately after.
var wantMarker = regexp.MustCompile("want\\s+([\"`].*)$")

func parseWants(t *testing.T, pkg *Package) []*want {
	t.Helper()
	var out []*want
	for i, file := range pkg.Files {
		filename := pkg.Filenames[i]
		for _, group := range file.Comments {
			for _, c := range group.List {
				m := wantMarker.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				rest := m[1]
				for {
					rest = strings.TrimSpace(rest)
					if rest == "" || (rest[0] != '"' && rest[0] != '`') {
						break
					}
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want string: %v", filename, line, err)
					}
					pattern, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: malformed want string: %v", filename, line, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s:%d: want regex: %v", filename, line, err)
					}
					out = append(out, &want{file: filename, line: line, re: re})
					rest = rest[len(q):]
				}
			}
		}
	}
	return out
}
