// Package bad mixes atomic and plain access to the same struct fields —
// the probabilistic data race atomiccheck exists to make deterministic.
package bad

import "sync/atomic"

type counters struct {
	hits  atomic.Uint64
	drops uint64
}

// Record is the sanctioned access path for both fields.
func (c *counters) Record() {
	c.hits.Add(1)
	atomic.AddUint64(&c.drops, 1)
}

// Snapshot reads drops without sync/atomic even though Record updates it
// atomically.
func (c *counters) Snapshot() (uint64, uint64) {
	a := c.hits.Load()
	b := c.drops // want "field drops is accessed with sync/atomic"
	return a, b
}

// Reset overwrites both fields plainly.
func (c *counters) Reset() {
	c.hits = atomic.Uint64{} // want "field hits has an atomic type"
	c.drops = 0              // want "field drops is accessed with sync/atomic"
}
