// Package clean accesses atomic fields only through sync/atomic, and its
// plain fields never touch sync/atomic at all — atomiccheck must stay
// silent on both.
package clean

import "sync/atomic"

type counters struct {
	hits  atomic.Uint64
	drops uint64
	name  string
}

func (c *counters) Record() {
	c.hits.Add(1)
	atomic.AddUint64(&c.drops, 1)
}

func (c *counters) Snapshot() (uint64, uint64) {
	return c.hits.Load(), atomic.LoadUint64(&c.drops)
}

// Rename uses a field no atomic access ever touches; plain use is fine.
func (c *counters) Rename(name string) {
	c.name = name
}

// Handoff takes the wrapper's address, which is how a field reaches a
// helper without copying the value.
func (c *counters) Handoff() *atomic.Uint64 {
	return &c.hits
}
