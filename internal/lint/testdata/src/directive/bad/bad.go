// Package bad contains malformed //saad: directives; the runner reports
// them under the "directive" analyzer name so a typo'd directive cannot
// silently stop checking (or suppressing) anything. Directive comments run
// to end of line, so the want expectations ride inside the directives
// themselves — the parser only interprets the first word after the prefix.
package bad

//saad:frobnicate want "unknown //saad: directive"

//saad:hotpath want "must appear in a function's doc comment"

var x = justOne()

func justOne() int { return 1 }
