// Package clean uses every directive shape correctly; the runner must
// report no "directive" diagnostics.
package clean

import "sync"

var mu sync.Mutex

// hot is a declared hot path (doc-comment directive).
//
//saad:hotpath
func hot(now int64) int64 { return now + 1 }

// whole-declaration suppression via doc comment:
//
//saad:allow lockcheck this function's send is drained by a dedicated goroutine
func sendLocked(ch chan int) {
	mu.Lock()
	ch <- 1
	mu.Unlock()
}

func trailing(ch chan int) {
	mu.Lock()
	ch <- 2 //saad:allow lockcheck trailing-comment suppression form
	mu.Unlock()
}
