// Package bad registers metrics the runtime registry would panic on:
// an invalid name, a duplicate registration, and an invalid label name.
package bad

import "saad/internal/metrics"

func register(r *metrics.Registry) {
	r.NewCounter("events_total", "events processed")
	r.NewCounter("events-total", "dashes are invalid")                    // want "is not a valid Prometheus identifier"
	r.NewCounter("events_total", "second registration panics")            // want "already registered on r at line"
	r.NewCounterVec("lag_seconds", "per-shard lag", "shard", "bad label") // want "label name \"bad label\" is not a valid Prometheus identifier"
}
