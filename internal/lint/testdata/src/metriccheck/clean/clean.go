// Package clean registers valid, distinct metric names — and calls
// constructor-shaped methods on a type that is not the metrics Registry,
// which metriccheck must ignore.
package clean

import "saad/internal/metrics"

type builder struct{}

func (builder) NewCounter(name, help string) {}

func register(r *metrics.Registry) {
	r.NewCounter("events_total", "events processed")
	r.NewGauge("queue_depth", "current queue depth")
	r.NewCounterVec("errors_total", "errors by kind", "kind", "shard")
}

// registerElsewhere uses an unrelated builder; its names are not metric
// registrations no matter how invalid they look.
func registerElsewhere(b builder) {
	b.NewCounter("not-a-metric", "different receiver type")
	b.NewCounter("not-a-metric", "registered twice but not on a registry")
}
