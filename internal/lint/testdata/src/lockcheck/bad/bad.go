// Package bad holds mutexes across the blocking operations lockcheck
// forbids: channel sends and receives, Emit calls, and blocking selects.
package bad

import "sync"

type sink struct{}

func (sink) Emit(v int) {}

type queue struct {
	mu  sync.Mutex
	n   int
	ch  chan int
	out sink
}

func (q *queue) Push(v int) {
	q.mu.Lock()
	q.n++
	q.ch <- v // want "mutex q.mu is held across a channel send"
	q.mu.Unlock()
}

func (q *queue) Pop() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return <-q.ch // want "mutex q.mu is held across a channel receive"
}

func (q *queue) Publish(v int) {
	q.mu.Lock()
	q.out.Emit(v) // want "mutex q.mu is held across a Emit call"
	q.mu.Unlock()
}

func (q *queue) WaitEither(other chan int) {
	q.mu.Lock()
	select { // want "mutex q.mu is held across a blocking select"
	case v := <-q.ch:
		_ = v
	case v := <-other:
		_ = v
	}
	q.mu.Unlock()
}
