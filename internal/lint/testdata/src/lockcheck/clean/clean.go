// Package clean releases its locks before blocking, uses non-blocking
// selects under locks, and hands blocking work to goroutines that do not
// inherit the holder's locks — all shapes lockcheck must accept.
package clean

import "sync"

type sink struct{}

func (sink) Emit(v int) {}

type queue struct {
	mu  sync.Mutex
	n   int
	ch  chan int
	out sink
}

func (q *queue) Push(v int) {
	q.mu.Lock()
	q.n++
	q.mu.Unlock()
	q.ch <- v
}

// TryPublish sends under the lock, but the default clause makes the select
// non-blocking — the bounded-queue drop pattern.
func (q *queue) TryPublish(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.ch <- v:
	default:
	}
}

// Background spawns the Emit into its own goroutine; the goroutine does not
// hold the caller's lock.
func (q *queue) Background() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.n++
	go func() {
		q.out.Emit(1)
	}()
}

// Branches may release and re-acquire; the checker restores the hold set
// conservatively but must not flag the unlocked send on the main path.
func (q *queue) Conditional(v int, fast bool) {
	q.mu.Lock()
	if fast {
		q.n++
	}
	q.mu.Unlock()
	q.ch <- v
}
