// Package bad violates every rule of the //saad:hotpath allocation
// discipline inside a marked function.
package bad

import (
	"fmt"
	"time"
)

func consume(v any) {}

// process is the per-event hot loop.
//
//saad:hotpath
func process(events map[int]string, out []string) {
	ts := time.Now()                // want "calls time.Now"
	msg := fmt.Sprintf("at %v", ts) // want "calls fmt.Sprintf"
	for id := range events {        // want "ranges over a map"
		_ = id
	}
	consume(42) // want "boxes a literal into an any parameter"
	_ = msg
	_ = out
}

// guarded hides the clock read behind a condition that is NOT a sampling
// decision: the tracing exemption must not extend to arbitrary guards.
//
//saad:hotpath
func guarded(enabled bool, out []int64) {
	if enabled {
		out[0] = time.Now().UnixNano() // want "calls time.Now"
	}
}

// alloc allocates a fresh backing array per call in three disguises.
//
//saad:hotpath
func alloc(points []int64) []int64 {
	buf := make([]byte, len(points)) // want "makes a slice"
	_ = buf
	snapshot := append([]int64(nil), points...) // want "appends onto a fresh slice"
	extra := append([]int64{}, points...)       // want "appends onto a fresh slice"
	_ = extra
	return snapshot
}
