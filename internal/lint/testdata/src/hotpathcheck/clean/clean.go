// Package clean observes the hot-path discipline: time arrives as a
// parameter, fmt only runs on the cold return path, iteration is over
// slices, and unmarked functions stay unconstrained. One deliberate wall
// clock read proves //saad:allow suppression.
package clean

import (
	"fmt"
	"time"
)

// tick is allocation-free on its hot path; the fmt.Errorf is a cold exit
// (directly returned) and therefore exempt.
//
//saad:hotpath
func tick(now int64, events []string) error {
	if len(events) == 0 {
		return fmt.Errorf("no events at %d", now)
	}
	for i := range events {
		_ = i
	}
	return nil
}

// drain reads the wall clock deliberately — the annotation records why, and
// the analyzer must honor it.
//
//saad:hotpath
func drain() int64 {
	t := time.Now() //saad:allow hotpathcheck fixture proves allow-suppression on a hot path
	return t.UnixNano()
}

// cold is not marked; it may allocate and read clocks freely.
func cold(events map[int]string) string {
	for _, v := range events {
		_ = v
	}
	return fmt.Sprintf("at %v", time.Now())
}
