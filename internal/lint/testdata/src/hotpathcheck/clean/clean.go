// Package clean observes the hot-path discipline: time arrives as a
// parameter, fmt only runs on the cold return path, iteration is over
// slices, and unmarked functions stay unconstrained. One deliberate wall
// clock read proves //saad:allow suppression.
package clean

import (
	"fmt"
	"time"
)

// tick is allocation-free on its hot path; the fmt.Errorf is a cold exit
// (directly returned) and therefore exempt.
//
//saad:hotpath
func tick(now int64, events []string) error {
	if len(events) == 0 {
		return fmt.Errorf("no events at %d", now)
	}
	for i := range events {
		_ = i
	}
	return nil
}

// drain reads the wall clock deliberately — the annotation records why, and
// the analyzer must honor it.
//
//saad:hotpath
func drain() int64 {
	t := time.Now() //saad:allow hotpathcheck fixture proves allow-suppression on a hot path
	return t.UnixNano()
}

// cold is not marked; it may allocate and read clocks freely.
func cold(events map[int]string) string {
	for _, v := range events {
		_ = v
	}
	return fmt.Sprintf("at %v", time.Now())
}

// sampler mimics a trace sampler: its decision gates wall-clock reads.
type sampler struct{}

func (sampler) Sample() bool { return false }

// span mimics a sampled trace context carried on an event.
type span struct{ Emit int64 }

// event mimics a synopsis carrying an optional sampled span.
type event struct{ Trace *span }

// stamp reads the wall clock only behind sampling guards — the tracing
// exemption: a Sample() call in the condition, or a nil test on a .Trace
// span pointer in the init. Neither read runs on the unsampled common path.
//
//saad:hotpath
func stamp(smp sampler, ev *event) {
	if smp.Sample() {
		ev.Trace = &span{Emit: time.Now().UnixNano()}
	}
	if sp := ev.Trace; sp != nil {
		sp.Emit = time.Now().UnixNano()
	}
}

// codec reuses struct-owned scratch: the only make is cap-guarded growth
// (amortized to zero), and appends extend the reused buffer.
type codec struct{ buf []byte }

//saad:hotpath
func (c *codec) encode(points []int64) []byte {
	n := 8 * len(points)
	if cap(c.buf) < n {
		c.buf = make([]byte, 0, n)
	}
	out := c.buf[:0]
	for _, p := range points {
		out = append(out, byte(p))
	}
	c.buf = out
	return out
}

// snapshot documents a deliberate defensive copy on a hot path — the
// allow directive records why the allocation is accepted.
//
//saad:hotpath
func snapshot(points []int64) []int64 {
	return append([]int64(nil), points...) //saad:allow hotpathcheck ownership handoff requires a defensive copy
}
