// Package clean is a correctly instrumented source: every log statement is
// preceded by its Hit, every id is unique and present in testdict.json, and
// no template has drifted. logpointcheck must stay silent, including on
// log-like calls inside nested blocks and case clauses.
//
//saad:instrumented dict=testdict.json
package clean

import "log"

type hitter struct{}

func (hitter) Hit(id int) {}

var saadlog hitter

func Run(requests []int) {
	saadlog.Hit(1)
	log.Println("service starting")

	for range requests {
		saadlog.Hit(2)
		log.Println("request handled")
	}

	saadlog.Hit(3)
	log.Println("shutting down")
}
