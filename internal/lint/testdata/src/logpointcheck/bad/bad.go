// Package bad seeds every drift class logpointcheck must detect against
// the committed testdict.json: a reused id, an id the dictionary has never
// assigned, a template edited in place, a log statement whose Hit was
// deleted, and a Hit orphaned from its log statement.
//
//saad:instrumented dict=testdict.json
package bad

import "log"

type hitter struct{}

func (hitter) Hit(id int) {}

var saadlog hitter

func Run() {
	saadlog.Hit(1)
	log.Println("service starting")

	saadlog.Hit(1) // want "duplicate log-point id 1"
	log.Println("service starting")

	saadlog.Hit(9) // want "log-point id 9 is not in the dictionary"
	log.Println("request handled")

	saadlog.Hit(3)
	log.Println("shutting down early") // want "template drifted from dictionary for id 3"

	log.Println("request handled") // want "log statement lacks a preceding Hit call"

	saadlog.Hit(2) // want "is not immediately followed by its log statement"
	doWork()
}

func doWork() {}
