package lint

// All returns SAAD's five project analyzers in their canonical order.
func All() []*Analyzer {
	return []*Analyzer{
		LogpointCheck,
		AtomicCheck,
		LockCheck,
		HotpathCheck,
		MetricCheck,
	}
}

// ByName resolves a comma-separated analyzer selection against All; an
// unknown name returns (nil, false) with the offending name.
func ByName(names []string) ([]*Analyzer, string, bool) {
	index := make(map[string]*Analyzer)
	for _, a := range All() {
		index[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range names {
		a, ok := index[name]
		if !ok {
			return nil, name, false
		}
		out = append(out, a)
	}
	return out, "", true
}
