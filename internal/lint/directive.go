package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// SAAD's analyzers are steered by three machine-readable comment
// directives, all sharing the `//saad:` prefix (no space after //, like
// //go: directives, so gofmt leaves them alone):
//
//	//saad:hotpath
//	    In a function's doc comment: the function is a declared hot path
//	    and hotpathcheck enforces its allocation discipline.
//
//	//saad:instrumented dict=<path> [hitpkg=<ident>] [logger=<ident>] [methods=<a,b,...>]
//	    Anywhere in a file: the whole package is an instrumented source in
//	    the sense of paper §4.1.1 — log statements carry Hit(id) calls and
//	    the committed dictionary at <path> (relative to the file) is the
//	    ground truth logpointcheck verifies against.
//
//	//saad:allow <analyzer> <reason>
//	    Suppresses <analyzer>'s diagnostics: on the directive's own line
//	    (trailing comment), on the line immediately below a standalone
//	    comment, or across the whole declaration when it appears in a
//	    func/type/var doc comment. The reason is mandatory — an
//	    unexplained suppression is itself a diagnostic.

// directivePrefix introduces every SAAD directive comment.
const directivePrefix = "//saad:"

// allowRange is one region where an analyzer's diagnostics are suppressed.
type allowRange struct {
	analyzer  string
	file      string
	startLine int
	endLine   int
}

// instrumentedSpec is the parsed form of a //saad:instrumented directive.
type instrumentedSpec struct {
	// Dict is the dictionary path as written (relative to the file's dir).
	Dict string
	// Dir is the directory of the file carrying the directive.
	Dir string
	// HitPackage is the identifier Hit calls are qualified with
	// (default "saadlog").
	HitPackage string
	// Logger and Methods mirror instrument.Options.
	Logger  string
	Methods []string
	pos     token.Pos
}

// directiveError is a malformed directive, reported as a finding.
type directiveError struct {
	Pos     token.Pos
	Message string
}

// parseDirectives scans one file's comments and accumulates allow ranges,
// hotpath function marks and instrumented specs onto the package.
func (pkg *Package) parseDirectives(file *ast.File, filename string) {
	fset := pkg.Fset

	// Map doc-comment groups to the extent of their declaration so a
	// directive in a doc comment covers the whole decl.
	docExtent := make(map[*ast.CommentGroup][2]int)
	for _, decl := range file.Decls {
		var doc *ast.CommentGroup
		switch d := decl.(type) {
		case *ast.FuncDecl:
			doc = d.Doc
		case *ast.GenDecl:
			doc = d.Doc
		}
		if doc != nil {
			docExtent[doc] = [2]int{fset.Position(decl.Pos()).Line, fset.Position(decl.End()).Line}
		}
	}

	for _, group := range file.Comments {
		for _, c := range group.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			body := strings.TrimPrefix(c.Text, directivePrefix)
			fields := strings.Fields(body)
			if len(fields) == 0 {
				pkg.DirectiveErrors = append(pkg.DirectiveErrors, directiveError{
					Pos: c.Pos(), Message: "empty //saad: directive",
				})
				continue
			}
			switch fields[0] {
			case "hotpath":
				if ext, ok := docExtent[group]; ok {
					pkg.hotpaths = append(pkg.hotpaths, hotpathMark{file: filename, startLine: ext[0], endLine: ext[1], pos: c.Pos()})
				} else {
					pkg.DirectiveErrors = append(pkg.DirectiveErrors, directiveError{
						Pos: c.Pos(), Message: "//saad:hotpath must appear in a function's doc comment",
					})
				}
			case "allow":
				if len(fields) < 3 {
					pkg.DirectiveErrors = append(pkg.DirectiveErrors, directiveError{
						Pos: c.Pos(), Message: "//saad:allow needs an analyzer name and a reason: //saad:allow <analyzer> <reason>",
					})
					continue
				}
				r := allowRange{analyzer: fields[1], file: filename}
				if ext, ok := docExtent[group]; ok {
					r.startLine, r.endLine = ext[0], ext[1]
				} else {
					// Trailing comment suppresses its own line; a
					// standalone comment suppresses the next line. Cover
					// both: code and a trailing directive share a line, and
					// nothing but the directive occupies a standalone line.
					line := fset.Position(c.Pos()).Line
					r.startLine, r.endLine = line, line+1
				}
				pkg.allows = append(pkg.allows, r)
			case "instrumented":
				spec, err := parseInstrumented(fields[1:], filename)
				if err != nil {
					pkg.DirectiveErrors = append(pkg.DirectiveErrors, directiveError{Pos: c.Pos(), Message: err.Error()})
					continue
				}
				spec.pos = c.Pos()
				if pkg.Instrumented != nil && pkg.Instrumented.Dict != spec.Dict {
					pkg.DirectiveErrors = append(pkg.DirectiveErrors, directiveError{
						Pos:     c.Pos(),
						Message: fmt.Sprintf("conflicting //saad:instrumented directives: dict=%s vs dict=%s", pkg.Instrumented.Dict, spec.Dict),
					})
					continue
				}
				pkg.Instrumented = spec
			default:
				pkg.DirectiveErrors = append(pkg.DirectiveErrors, directiveError{
					Pos: c.Pos(), Message: fmt.Sprintf("unknown //saad: directive %q (want hotpath, allow or instrumented)", fields[0]),
				})
			}
		}
	}
}

// parseInstrumented parses the key=value arguments of //saad:instrumented.
func parseInstrumented(args []string, filename string) (*instrumentedSpec, error) {
	spec := &instrumentedSpec{
		Dir:        dirOf(filename),
		HitPackage: "saadlog",
		Logger:     "log",
	}
	for _, arg := range args {
		key, val, ok := strings.Cut(arg, "=")
		if !ok || val == "" {
			return nil, fmt.Errorf("malformed //saad:instrumented argument %q (want key=value)", arg)
		}
		switch key {
		case "dict":
			spec.Dict = val
		case "hitpkg":
			spec.HitPackage = val
		case "logger":
			spec.Logger = val
		case "methods":
			spec.Methods = strings.Split(val, ",")
		default:
			return nil, fmt.Errorf("unknown //saad:instrumented key %q (want dict, hitpkg, logger or methods)", key)
		}
	}
	if spec.Dict == "" {
		return nil, fmt.Errorf("//saad:instrumented needs dict=<path>")
	}
	return spec, nil
}

func dirOf(filename string) string {
	if i := strings.LastIndexByte(filename, '/'); i >= 0 {
		return filename[:i]
	}
	return "."
}

// hotpathMark records one //saad:hotpath-annotated declaration by its file
// line extent; hotpathcheck matches function declarations against it.
type hotpathMark struct {
	file      string
	startLine int
	endLine   int
	pos       token.Pos
}

// allowed reports whether an analyzer's diagnostic at file:line falls
// inside any //saad:allow range.
func (pkg *Package) allowed(analyzer, file string, line int) bool {
	for _, r := range pkg.allows {
		if r.analyzer == analyzer && r.file == file && line >= r.startLine && line <= r.endLine {
			return true
		}
	}
	return false
}

// Hotpath reports whether the function declaration spanning the given
// position range carries a //saad:hotpath mark.
func (pkg *Package) Hotpath(file string, startLine int) bool {
	for _, m := range pkg.hotpaths {
		if m.file == file && m.startLine == startLine {
			return true
		}
	}
	return false
}
