package lint

import (
	"go/ast"
	"go/types"
)

// HotpathCheck enforces the allocation discipline of functions marked
// //saad:hotpath — the per-Hit tracker path, stream.Channel.Emit, the
// engine shard loop and the synopsis codec, which between them run once
// per log statement executed by the monitored system (paper Figure 7's
// <2% overhead budget). Inside a marked function it flags:
//
//   - time.Now() — hot paths take virtual time as a parameter; a wall
//     clock read is both a syscall-adjacent cost and a semantics bug
//     (vtime discipline, DESIGN §7)
//   - fmt.Sprintf / Sprint / Sprintln / Errorf / Sprintf-family calls —
//     each one allocates; signature interning exists precisely to keep
//     string building out of Feed (DESIGN §10)
//   - ranging over a map — nondeterministic order and hash-iteration cost
//   - literals passed to interface-typed parameters — the boxing
//     allocation go build will not warn about
//   - make of a slice — a fresh backing array per call; zero-alloc paths
//     reuse caller- or struct-owned scratch (dst = append(dst, ...))
//   - append onto a fresh slice — append([]T(nil), ...), append([]T{}, ...)
//     or append(nil, ...) — which hides the same per-call allocation
//     behind append's grow path
//
// A fmt call whose result is immediately returned (return fmt.Errorf(...))
// is treated as a cold exit path and exempt: error construction happens
// after the hot path has already failed.
//
// A slice make inside an if statement whose condition (or init) calls the
// builtin cap is exempt — that is the amortized-growth idiom
// (`if cap(d.buf) < n { d.buf = make([]byte, n) }`): it allocates only
// while the reusable buffer warms up, then never again.
//
// time.Now additionally gets a sampling-guard exemption for pipeline
// tracing (DESIGN §13): a wall-clock read inside an if statement whose
// condition or init checks a trace-sampling decision — a Sample()/Sampled()
// call, or a nil test on a .Trace span pointer — runs only for the 1-in-N
// sampled synopses, so it is off the common path by construction. An
// unconditional time.Now, or one behind an unrelated condition, is still
// flagged.
var HotpathCheck = &Analyzer{
	Name: "hotpathcheck",
	Doc: "//saad:hotpath functions must not call time.Now or fmt.Sprintf-family " +
		"functions, range over maps, or box literals into interfaces",
	Run: runHotpathCheck,
}

// sprintFamily are the fmt allocating formatters flagged on hot paths.
var sprintFamily = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
	"Appendf": true, "Append": true, "Appendln": true,
}

func runHotpathCheck(pass *Pass) error {
	for i, file := range pass.Pkg.Files {
		filename := pass.Pkg.Filenames[i]
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !pass.Pkg.Hotpath(filename, pass.Pkg.Fset.Position(fn.Pos()).Line) {
				continue
			}
			checkHotpathBody(pass, fn)
		}
	}
	return nil
}

func checkHotpathBody(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	inspectWithParents(fn.Body, func(n ast.Node, parents []ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "hot path %s ranges over a map (nondeterministic order, hash iteration cost)", fn.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkHotpathCall(pass, fn, n, parents)
		}
		return true
	})
}

func checkHotpathCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr, parents []ast.Node) {
	info := pass.Pkg.Info
	if pkgFuncCall(info, call, "time", "Now") && !samplingGuarded(parents) {
		pass.Reportf(call.Pos(), "hot path %s calls time.Now (virtual time must arrive as a parameter)", fn.Name.Name)
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sprintFamily[sel.Sel.Name] &&
		pkgFuncCall(info, call, "fmt", sel.Sel.Name) {
		if !inReturn(parents) {
			pass.Reportf(call.Pos(), "hot path %s calls fmt.%s (allocates; cold error exits may `return fmt.Errorf(...)` directly)", fn.Name.Name, sel.Sel.Name)
		}
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch {
		case builtinCall(info, id, "make"):
			if t := info.TypeOf(call); t != nil {
				if _, isSlice := t.Underlying().(*types.Slice); isSlice && !capGuarded(parents) {
					pass.Reportf(call.Pos(), "hot path %s makes a slice (fresh backing array per call; reuse scratch with dst = append(dst[:0], ...) or cap-guard the growth)", fn.Name.Name)
				}
			}
		case builtinCall(info, id, "append"):
			if len(call.Args) > 0 && freshSlice(info, call.Args[0]) {
				pass.Reportf(call.Pos(), "hot path %s appends onto a fresh slice (allocates per call; append into reusable scratch instead)", fn.Name.Name)
			}
		}
	}
	checkBoxedLiterals(pass, fn, call)
}

// builtinCall reports whether id resolves to the named Go builtin (not a
// shadowing local function of the same name).
func builtinCall(info *types.Info, id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// capGuarded reports whether the node whose parent stack is given sits
// inside an if statement whose condition or init calls the builtin cap —
// the amortized-growth exemption for slice makes: such a make runs only
// while a reusable buffer is still warming up.
func capGuarded(parents []ast.Node) bool {
	for i := len(parents) - 1; i >= 0; i-- {
		switch p := parents[i].(type) {
		case *ast.IfStmt:
			if mentionsCap(p.Cond) || mentionsCap(p.Init) {
				return true
			}
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}

// mentionsCap reports whether n contains a call to the builtin cap.
func mentionsCap(n ast.Node) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "cap" {
				found = true
			}
		}
		return !found
	})
	return found
}

// freshSlice reports whether e denotes a slice value that is provably fresh
// at every evaluation — the append-first-argument shapes that force append
// to allocate a new backing array per call: a nil identifier, a composite
// literal ([]T{} or []T{...}), or the []T(nil) conversion.
func freshSlice(info *types.Info, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CompositeLit:
		if t := info.TypeOf(e); t != nil {
			_, isSlice := t.Underlying().(*types.Slice)
			return isSlice
		}
	case *ast.CallExpr:
		// A conversion []T(nil): Fun is a type, the single argument is nil.
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice {
				if id, ok := e.Args[0].(*ast.Ident); ok && id.Name == "nil" {
					return true
				}
			}
		}
	case *ast.ParenExpr:
		return freshSlice(info, e.X)
	}
	return false
}

// samplingGuarded reports whether the node whose parent stack is given
// sits inside an if statement gated on a trace-sampling decision — the
// tracing exemption for time.Now on hot paths. The guard must be visible
// in the if's own condition or init: a Sample()/Sampled() call, or any
// reference to a selector named Trace (the conventional nil-span test
// `if sp := s.Trace; sp != nil`).
func samplingGuarded(parents []ast.Node) bool {
	for i := len(parents) - 1; i >= 0; i-- {
		switch p := parents[i].(type) {
		case *ast.IfStmt:
			if isSamplingExpr(p.Cond) || isSamplingExpr(p.Init) {
				return true
			}
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}

// isSamplingExpr reports whether n mentions a sampling check: a call to a
// function or method named Sample/Sampled, or a selector named Trace.
func isSamplingExpr(n ast.Node) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Sample" || fun.Sel.Name == "Sampled" {
					found = true
				}
			case *ast.Ident:
				if fun.Name == "Sample" || fun.Name == "Sampled" {
					found = true
				}
			}
		case *ast.SelectorExpr:
			if n.Sel.Name == "Trace" {
				found = true
			}
		}
		return !found
	})
	return found
}

// inReturn reports whether the node whose parent stack is given sits
// directly inside a return statement — the cold-exit exemption.
func inReturn(parents []ast.Node) bool {
	for i := len(parents) - 1; i >= 0; i-- {
		switch parents[i].(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.BlockStmt, *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}

// checkBoxedLiterals flags basic or composite literals passed where the
// callee expects an interface: the conversion allocates on every call.
func checkBoxedLiterals(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.Pkg.Info
	sigT := info.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		switch arg.(type) {
		case *ast.BasicLit, *ast.CompositeLit:
		default:
			continue
		}
		pt := paramType(sig, i)
		if pt == nil {
			continue
		}
		if iface, isIface := pt.Underlying().(*types.Interface); isIface {
			// A literal that is already of an interface type does not box.
			if at := info.TypeOf(arg); at != nil {
				if _, argIsIface := at.Underlying().(*types.Interface); argIsIface {
					continue
				}
			}
			what := "interface"
			if iface.Empty() {
				what = "any"
			}
			pass.Reportf(arg.Pos(), "hot path %s boxes a literal into an %s parameter (allocates per call)", fn.Name.Name, what)
		}
	}
}

// paramType resolves the type of argument i, unrolling variadic tails.
func paramType(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		last := sig.Params().At(n - 1).Type()
		if sl, ok := last.(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return sig.Params().At(i).Type()
}
