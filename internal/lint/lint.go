// Package lint is SAAD's project-specific static-analysis framework: a
// stdlib-only (go/ast, go/parser, go/types, go/token) miniature of the
// golang.org/x/tools analysis machinery, specialized to machine-check the
// invariants SAAD's correctness rests on but `go build` and `go vet` cannot
// see — the paper's one-time instrumentation pass (every log statement
// carries a unique pre-assigned log-point id consistent with the committed
// template dictionary, Sections 3.2.2/4.1.1) and the concurrency discipline
// the sharded engine of DESIGN §10 depends on (atomics-only field access,
// no mutex held across blocking operations, allocation-free hot paths,
// panic-free metric registration).
//
// cmd/saad-vet wires the five project analyzers into a multichecker run
// over ./...; the golden corpus under testdata/ proves each analyzer both
// fires on a seeded violation and stays silent on clean code.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// An Analyzer is one static check. Run inspects a single type-checked
// package through the Pass and reports findings; it must not retain the
// Pass after returning.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //saad:allow directives. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// enforces.
	Doc string
	// Run performs the check. Errors are infrastructure failures (e.g. an
	// unreadable dictionary file), not findings; findings go through
	// Pass.Reportf.
	Run func(*Pass) error
}

// A Diagnostic is one finding, rendered as "file:line:col: analyzer: msg".
type Diagnostic struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the canonical grep-friendly form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies every analyzer to every package, applies //saad:allow
// suppression, and returns the surviving diagnostics sorted by position.
// The returned error reports infrastructure failures only (an analyzer
// that could not run), never findings.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		// Malformed //saad: directives are findings in their own right:
		// a typo'd suppression silently stops suppressing (or worse,
		// never checked anything).
		for _, bad := range pkg.DirectiveErrors {
			pos := pkg.Fset.Position(bad.Pos)
			diags = append(diags, Diagnostic{
				Pos: pos, File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Analyzer: "directive", Message: bad.Message,
			})
		}
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		diags = suppress(diags, pkg)
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		if diags[i].Col != diags[j].Col {
			return diags[i].Col < diags[j].Col
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// suppress drops diagnostics covered by a //saad:allow directive for their
// analyzer.
func suppress(diags []Diagnostic, pkg *Package) []Diagnostic {
	if len(pkg.allows) == 0 {
		return diags
	}
	out := diags[:0]
	for _, d := range diags {
		if !pkg.allowed(d.Analyzer, d.File, d.Line) {
			out = append(out, d)
		}
	}
	return out
}
