package lint

import (
	"go/token"
	"os"
	"path/filepath"

	"saad/internal/instrument"
	"saad/internal/logpoint"
)

// LogpointCheck verifies the paper's instrumentation invariant (§3.2.2,
// §4.1.1) in packages marked //saad:instrumented: every log statement is
// preceded by a Hit call carrying a unique pre-assigned log-point id, every
// id exists in the committed dictionary, and no template has drifted from
// its dictionary entry. The detection logic is shared with
// cmd/saad-instrument (internal/instrument.Scan.Verify), so the build-time
// pass and this vet-time pass cannot disagree about what drift is.
var LogpointCheck = &Analyzer{
	Name: "logpointcheck",
	Doc: "in //saad:instrumented packages, Hit ids are unique and present in the " +
		"committed dictionary, templates match it, and every log statement has its Hit",
	Run: runLogpointCheck,
}

func runLogpointCheck(pass *Pass) error {
	spec := pass.Pkg.Instrumented
	if spec == nil {
		return nil
	}
	dictPath := spec.Dict
	if !filepath.IsAbs(dictPath) {
		dictPath = filepath.Join(spec.Dir, dictPath)
	}
	f, err := os.Open(dictPath)
	if err != nil {
		pass.Reportf(spec.pos, "cannot open committed dictionary: %v", err)
		return nil
	}
	defer f.Close()
	dict, err := logpoint.ReadDictionary(f)
	if err != nil {
		pass.Reportf(spec.pos, "cannot parse committed dictionary %s: %v", dictPath, err)
		return nil
	}

	scan := instrument.ScanInstrumented(pass.Pkg.Fset, pass.Pkg.Files, instrument.ScanOptions{
		HitPackage: spec.HitPackage,
		Logger:     spec.Logger,
		Methods:    spec.Methods,
	})
	for _, p := range scan.Verify(dict) {
		pass.Reportf(posOf(pass, p), "%s", p.Message)
	}
	return nil
}

// posOf maps an instrument.Problem position back to a token.Pos in the
// pass's file set so Reportf renders it like every other diagnostic.
func posOf(pass *Pass, p instrument.Problem) token.Pos {
	for i, name := range pass.Pkg.Filenames {
		if name == p.Pos.Filename {
			file := pass.Pkg.Fset.File(pass.Pkg.Files[i].Pos())
			if file != nil && p.Pos.Line >= 1 && p.Pos.Line <= file.LineCount() {
				return file.LineStart(p.Pos.Line) + token.Pos(p.Pos.Column-1)
			}
		}
	}
	return pass.Pkg.Files[0].Pos()
}
