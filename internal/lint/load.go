package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package ready for
// analysis.
type Package struct {
	// Path is the package's import path (module path + relative dir).
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Fset positions every file in the load.
	Fset *token.FileSet
	// Files are the parsed sources in Filenames order.
	Files []*ast.File
	// Filenames are the loaded file paths (as given to the parser).
	Filenames []string
	// Types and Info are the type-checker's output. Type errors do not
	// abort the load — syntactic analyzers still run, and golden fixtures
	// are deliberately not always complete programs — but are recorded in
	// TypeErrors for callers that insist on a clean universe.
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error

	// Instrumented is the package's //saad:instrumented spec, if any.
	Instrumented *instrumentedSpec
	// DirectiveErrors are malformed //saad: directives, reported by the
	// runner under the "directive" analyzer name.
	DirectiveErrors []directiveError

	allows   []allowRange
	hotpaths []hotpathMark
}

// LoadConfig configures Load.
type LoadConfig struct {
	// Root is the module root directory; patterns resolve against it.
	// Empty means the current working directory.
	Root string
	// IncludeTests includes in-package _test.go files. External test
	// packages (package foo_test) are never loaded.
	IncludeTests bool
}

// Load parses and type-checks the packages matched by patterns. A pattern
// is a directory path relative to Root; the suffix "/..." walks
// recursively, and "./..." loads the whole module. Directories named
// testdata or vendor, and directories whose name starts with "." or "_",
// are skipped by recursive walks (but can be named directly — the golden
// corpus loads its fixtures that way).
//
// Type-checking uses the stdlib source importer, which resolves both
// standard-library and module-local imports from source; nothing needs to
// be compiled or installed first.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	root := cfg.Root
	if root == "" {
		root = "."
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}

	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	// One importer instance serves the whole load so each dependency is
	// type-checked at most once per process.
	imp := importer.ForCompiler(fset, "source", nil)

	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loadDir(fset, imp, root, modPath, dir, cfg.IncludeTests)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// modulePath reads the module path from go.mod under root; without a
// go.mod the directory name is used (good enough for fixture trees).
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		if os.IsNotExist(err) {
			abs, _ := filepath.Abs(root)
			return filepath.Base(abs), nil
		}
		return "", fmt.Errorf("lint: read go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", filepath.Join(root, "go.mod"))
}

// expandPatterns resolves patterns into a sorted list of package dirs.
func expandPatterns(root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(root, base)
		}
		info, err := os.Stat(base)
		if err != nil {
			return nil, fmt.Errorf("lint: pattern %q: %w", pat, err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q is not a directory", pat)
		}
		if !recursive {
			add(base)
			continue
		}
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: walk %q: %w", pat, err)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// loadDir parses and type-checks one directory; it returns (nil, nil) for
// directories with no loadable Go files.
func loadDir(fset *token.FileSet, imp types.Importer, root, modPath, dir string, includeTests bool) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: read %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)

	pkg := &Package{Dir: dir, Fset: fset}
	var pkgName string
	for _, name := range names {
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("lint: read %s: %w", path, err)
		}
		if ignoredByBuildTag(src) {
			continue
		}
		file, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse: %w", err)
		}
		fileName := file.Name.Name
		if strings.HasSuffix(fileName, "_test") {
			continue // external test package
		}
		if pkgName == "" {
			pkgName = fileName
		} else if fileName != pkgName {
			return nil, fmt.Errorf("lint: %s: found packages %s and %s", dir, pkgName, fileName)
		}
		pkg.Files = append(pkg.Files, file)
		pkg.Filenames = append(pkg.Filenames, path)
		pkg.parseDirectives(file, path)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}

	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		pkg.Path = modPath
	} else {
		pkg.Path = modPath + "/" + filepath.ToSlash(rel)
	}

	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns the (possibly incomplete) package even on error; the
	// per-error callback already captured what went wrong.
	pkg.Types, _ = conf.Check(pkg.Path, fset, pkg.Files, pkg.Info)
	return pkg, nil
}

// ignoredByBuildTag reports whether src opts out of every build via
// //go:build ignore (the only constraint the loader honors; SAAD has no
// platform-specific sources).
func ignoredByBuildTag(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSpace(line)
		if line == "//go:build ignore" || strings.HasPrefix(line, "//go:build ignore ") {
			return true
		}
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		return false // reached package clause
	}
	return false
}
