package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// MetricCheck validates metric registration against internal/metrics'
// runtime rules at vet time instead of panic time: names and label names
// passed to Registry constructors must be valid Prometheus identifiers,
// and a name must not be registered twice on the same registry (the
// registry panics on duplicates — MustRegister semantics — which in SAAD
// means the analyzer process dies at startup, after the monitored system
// is already running).
//
// The duplicate check is a static approximation scoped to where it is
// reliable: two registrations of the same literal name on the same
// receiver expression within one function. Cross-function duplicates
// depend on which bundles a caller composes and are the runtime panic's
// job.
var MetricCheck = &Analyzer{
	Name: "metriccheck",
	Doc: "metric names passed to internal/metrics constructors must be valid " +
		"Prometheus identifiers and registered at most once per registry",
	Run: runMetricCheck,
}

// metricConstructors maps Registry method names to whether their trailing
// variadic arguments are label names.
var metricConstructors = map[string]bool{
	"NewCounter": false, "NewGauge": false, "NewHistogram": false,
	"NewCounterFunc": false, "NewGaugeFunc": false,
	"NewCounterVec": true, "NewGaugeVec": true,
}

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

func runMetricCheck(pass *Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			// seen maps "receiverExpr\x00name" to the first registration
			// line within this function.
			seen := make(map[string]int)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkMetricCall(pass, info, call, seen)
				return true
			})
			return true
		})
	}
	return nil
}

func checkMetricCall(pass *Pass, info *types.Info, call *ast.CallExpr, seen map[string]int) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	labeled, isCtor := metricConstructors[sel.Sel.Name]
	if !isCtor || len(call.Args) < 1 {
		return
	}
	if !isRegistryReceiver(info, sel) {
		return
	}
	name, isLit := stringLiteral(call.Args[0])
	if !isLit {
		return // dynamic names are the runtime validator's job
	}
	if !metricNameRE.MatchString(name) {
		pass.Reportf(call.Args[0].Pos(), "metric name %q is not a valid Prometheus identifier (want [a-zA-Z_:][a-zA-Z0-9_:]*)", name)
	}
	recvText := types.ExprString(sel.X)
	key := recvText + "\x00" + name
	line := pass.Pkg.Fset.Position(call.Pos()).Line
	if first, dup := seen[key]; dup {
		pass.Reportf(call.Args[0].Pos(), "metric %q is already registered on %s at line %d (the registry panics on duplicates)", name, recvText, first)
	} else {
		seen[key] = line
	}
	if labeled && len(call.Args) > 2 {
		for _, arg := range call.Args[2:] {
			label, isLit := stringLiteral(arg)
			if !isLit {
				continue
			}
			if !labelNameRE.MatchString(label) {
				pass.Reportf(arg.Pos(), "label name %q is not a valid Prometheus identifier (want [a-zA-Z_][a-zA-Z0-9_]*)", label)
			}
		}
	}
}

// isRegistryReceiver reports whether sel's receiver is a
// saad/internal/metrics.Registry, falling back to a syntactic heuristic
// (an identifier named r/reg/registry) when type information is absent.
func isRegistryReceiver(info *types.Info, sel *ast.SelectorExpr) bool {
	if t := info.TypeOf(sel.X); t != nil {
		path, name := namedTypePath(t)
		return name == "Registry" && strings.HasSuffix(path, "internal/metrics")
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		switch id.Name {
		case "r", "reg", "registry":
			return true
		}
	}
	return false
}

// stringLiteral unquotes a string literal expression.
func stringLiteral(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
