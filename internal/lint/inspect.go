package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// inspectWithParents walks root in depth-first order calling fn with each
// node and its ancestor stack (outermost first, excluding the node
// itself). Returning false skips the node's children.
func inspectWithParents(root ast.Node, fn func(n ast.Node, parents []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			// Children are skipped, so Inspect sends no closing nil for
			// this node: do not push it.
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// pkgFuncCall reports whether call invokes the package-level function
// pkgPath.name, resolving through the type-checker when possible and
// falling back to the syntactic `<pkgIdent>.<name>` shape when type
// information is incomplete (e.g. in golden fixtures).
func pkgFuncCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if obj := info.Uses[sel.Sel]; obj != nil {
		if fn, ok := obj.(*types.Func); ok {
			return fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
		}
	}
	// Syntactic fallback: the identifier matches the package's base name
	// and resolves to nothing local.
	base := pkgPath
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	return id.Name == base && info.Uses[id] == nil && info.Defs[id] == nil
}

// namedTypePath returns the package path and name of t's core named type
// (pointers dereferenced), or ("", "") when t is not named.
func namedTypePath(t types.Type) (pkgPath, name string) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Path(), obj.Name()
}

// enclosingFuncs yields the innermost enclosing function-ish node (FuncDecl
// or FuncLit) from a parent stack, or nil.
func enclosingFunc(parents []ast.Node) ast.Node {
	for i := len(parents) - 1; i >= 0; i-- {
		switch parents[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return parents[i]
		}
	}
	return nil
}
