package lint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseSrc runs directive parsing over one in-memory file, the way loadDir
// would.
func parseSrc(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Dir: ".", Fset: fset, Files: nil}
	pkg.Files = append(pkg.Files, file)
	pkg.Filenames = append(pkg.Filenames, "src.go")
	pkg.parseDirectives(file, "src.go")
	return pkg
}

func directiveMessages(pkg *Package) []string {
	var out []string
	for _, e := range pkg.DirectiveErrors {
		out = append(out, e.Message)
	}
	return out
}

// TestDirectiveErrors covers the malformed shapes the golden corpus cannot
// express: directive comments run to end of line, so an allow with trailing
// want-text would parse as a valid reason.
func TestDirectiveErrors(t *testing.T) {
	tests := []struct {
		name, src, wantErr string
	}{
		{
			name:    "allow without reason",
			src:     "package p\n\n//saad:allow lockcheck\n",
			wantErr: "needs an analyzer name and a reason",
		},
		{
			name:    "allow without analyzer",
			src:     "package p\n\n//saad:allow\n",
			wantErr: "needs an analyzer name and a reason",
		},
		{
			name:    "empty directive",
			src:     "package p\n\n//saad:\n",
			wantErr: "empty //saad: directive",
		},
		{
			name:    "instrumented without dict",
			src:     "package p\n\n//saad:instrumented hitpkg=saadlog\n",
			wantErr: "needs dict=<path>",
		},
		{
			name:    "instrumented malformed pair",
			src:     "package p\n\n//saad:instrumented dict=\n",
			wantErr: "malformed //saad:instrumented argument",
		},
		{
			name:    "instrumented unknown key",
			src:     "package p\n\n//saad:instrumented dict=d.json color=red\n",
			wantErr: "unknown //saad:instrumented key",
		},
		{
			name: "conflicting instrumented dicts",
			src: "package p\n\n//saad:instrumented dict=a.json\n\n" +
				"//saad:instrumented dict=b.json\n",
			wantErr: "conflicting //saad:instrumented directives",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			pkg := parseSrc(t, tt.src)
			msgs := directiveMessages(pkg)
			for _, m := range msgs {
				if strings.Contains(m, tt.wantErr) {
					return
				}
			}
			t.Fatalf("errors = %v, want one containing %q", msgs, tt.wantErr)
		})
	}
}

// TestAllowRanges pins the three suppression scopes: trailing comment
// (own line), standalone comment (next line), doc comment (whole decl).
func TestAllowRanges(t *testing.T) {
	src := `package p

import "sync"

var mu sync.Mutex

// doc-comment scope covers the whole declaration:
//
//saad:allow lockcheck documented protocol
func whole(ch chan int) {
	mu.Lock()
	ch <- 1
	ch <- 2
	mu.Unlock()
}

func lines(ch chan int) {
	mu.Lock()
	ch <- 1 //saad:allow lockcheck trailing form
	//saad:allow lockcheck standalone form
	ch <- 2
	ch <- 3
	mu.Unlock()
}
`
	pkg := parseSrc(t, src)
	if len(pkg.DirectiveErrors) != 0 {
		t.Fatalf("unexpected directive errors: %v", directiveMessages(pkg))
	}
	cases := []struct {
		line  int
		allow bool
	}{
		{11, true},  // inside whole(): doc scope
		{12, true},  // inside whole(): doc scope
		{13, true},  // inside whole(): doc scope
		{19, true},  // trailing form, own line
		{21, true},  // standalone form, next line
		{22, false}, // past the standalone form's reach
	}
	for _, c := range cases {
		if got := pkg.allowed("lockcheck", "src.go", c.line); got != c.allow {
			t.Errorf("allowed(lockcheck, line %d) = %v, want %v", c.line, got, c.allow)
		}
	}
	if pkg.allowed("atomiccheck", "src.go", 11) {
		t.Error("allow leaked across analyzer names")
	}
}
