package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicCheck enforces the sharded engine's atomics-only discipline
// (DESIGN §10): once a struct field is accessed through sync/atomic —
// either by being one of the atomic wrapper types (atomic.Bool,
// atomic.Uint64, ...) or by having its address passed to an atomic
// function (atomic.AddUint64(&s.n, 1)) — every other access must go
// through sync/atomic too. A single plain load or store reintroduces
// exactly the probabilistic data race the CI race detector only sometimes
// catches.
var AtomicCheck = &Analyzer{
	Name: "atomiccheck",
	Doc: "a struct field accessed via sync/atomic anywhere must never be read " +
		"or written plainly elsewhere",
	Run: runAtomicCheck,
}

// atomicWrapperTypes are the sync/atomic value types whose methods are the
// only sanctioned access path.
var atomicWrapperTypes = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// atomicFuncs are the old-style sync/atomic functions taking an address.
func isAtomicFuncName(name string) bool {
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if rest, ok := strings.CutPrefix(name, prefix); ok && rest != "" {
			switch rest {
			case "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer":
				return true
			}
		}
	}
	return false
}

func runAtomicCheck(pass *Pass) error {
	info := pass.Pkg.Info

	// Pass 1: collect fields that participate in atomic access.
	// wrapperFields: fields whose declared type is an atomic wrapper.
	// addrFields:    plain-typed fields whose address feeds an atomic func.
	wrapperFields := make(map[*types.Var]bool)
	addrFields := make(map[*types.Var]token.Position)

	fieldOf := func(sel *ast.SelectorExpr) *types.Var {
		s, ok := info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return nil
		}
		v, _ := s.Obj().(*types.Var)
		return v
	}

	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			// Wrapper-typed field declarations.
			if st, ok := n.(*ast.StructType); ok {
				for _, fld := range st.Fields.List {
					t := info.TypeOf(fld.Type)
					if t == nil {
						continue
					}
					if path, name := namedTypePath(t); path == "sync/atomic" && atomicWrapperTypes[name] {
						for _, id := range fld.Names {
							if v, ok := info.Defs[id].(*types.Var); ok {
								wrapperFields[v] = true
							}
						}
					}
				}
			}
			// &s.f arguments to atomic functions.
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !isAtomicFuncName(sel.Sel.Name) {
				return true
			}
			if !pkgFuncCall(info, call, "sync/atomic", sel.Sel.Name) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if fieldSel, ok := un.X.(*ast.SelectorExpr); ok {
					if v := fieldOf(fieldSel); v != nil {
						if _, seen := addrFields[v]; !seen {
							addrFields[v] = pass.Pkg.Fset.Position(call.Pos())
						}
					}
				}
			}
			return true
		})
	}

	if len(wrapperFields) == 0 && len(addrFields) == 0 {
		return nil
	}

	// Pass 2: flag plain accesses.
	for _, file := range pass.Pkg.Files {
		inspectWithParents(file, func(n ast.Node, parents []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			v := fieldOf(sel)
			if v == nil {
				return true
			}
			switch {
			case wrapperFields[v]:
				if bad, what := plainWrapperUse(sel, parents); bad {
					pass.Reportf(sel.Pos(), "field %s has an atomic type and must only be used via its methods; this %s copies or overwrites its value", v.Name(), what)
				}
			default:
				if first, ok := addrFields[v]; ok {
					if plainAddrUse(sel, parents) {
						pass.Reportf(sel.Pos(), "field %s is accessed with sync/atomic (e.g. at %s:%d) but read or written plainly here", v.Name(), first.Filename, first.Line)
					}
				}
			}
			return true
		})
	}
	return nil
}

// plainWrapperUse decides whether a selector of an atomic-wrapper field is
// a forbidden plain use. Method calls (s.f.Load()) and address-of (&s.f)
// are sanctioned; assignment and value copies are not.
func plainWrapperUse(sel *ast.SelectorExpr, parents []ast.Node) (bool, string) {
	if len(parents) == 0 {
		return false, ""
	}
	switch p := parents[len(parents)-1].(type) {
	case *ast.SelectorExpr:
		// s.f.Load() — the wrapper is the receiver of a method selector.
		return false, ""
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			return false, ""
		}
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == sel {
				return true, "assignment"
			}
		}
		return true, "value copy"
	case *ast.ValueSpec:
		return true, "value copy"
	case *ast.KeyValueExpr:
		if p.Key == sel {
			return false, ""
		}
		return true, "value copy"
	case *ast.CallExpr:
		for _, arg := range p.Args {
			if arg == sel {
				return true, "value copy"
			}
		}
		return false, ""
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.BinaryExpr:
		return true, "value copy"
	}
	return false, ""
}

// plainAddrUse decides whether a selector of an atomically-accessed
// plain-typed field is a forbidden plain use. The only sanctioned shape is
// &s.f passed straight into a sync/atomic call.
func plainAddrUse(sel *ast.SelectorExpr, parents []ast.Node) bool {
	if len(parents) == 0 {
		return false
	}
	last := parents[len(parents)-1]
	if un, ok := last.(*ast.UnaryExpr); ok && un.Op == token.AND {
		if len(parents) >= 2 {
			if call, ok := parents[len(parents)-2].(*ast.CallExpr); ok {
				if fn, ok := call.Fun.(*ast.SelectorExpr); ok && isAtomicFuncName(fn.Sel.Name) {
					return false
				}
			}
		}
		// Address escaping anywhere else defeats the analysis; flag it.
		return true
	}
	if p, ok := last.(*ast.SelectorExpr); ok && p.X == sel {
		// s.f.m() on a plain-typed field cannot happen for scalars; being
		// the X of another selector means a nested field path — treat the
		// leaf access as the decision point.
		return false
	}
	return true
}
