package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockCheck forbids holding a mutex across an operation that can block
// indefinitely or re-enter user code: a channel send or receive, a call to
// an Emit method (the pipeline's fan-out points — tracker.Sink
// implementations may do arbitrary work, DESIGN §10's callback-isolation
// rule), or blocking I/O. SAAD is a monitoring layer: a mutex held across
// a blocking operation turns one slow consumer into a pipeline-wide stall,
// which is how the pre-PR-1 Channel.Emit lost ~11 ns/op and how monitoring
// layers end up being the outage.
//
// The analysis is an intra-function approximation: Lock()/RLock() opens a
// hold on the receiver expression, Unlock()/RUnlock() closes it, a
// deferred Unlock holds to the end of the function. Function literals are
// analyzed separately with an empty hold set (they typically run
// elsewhere). Sends and receives inside a select that has a default clause
// are non-blocking and exempt.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "no mutex may be held across a channel send/receive, an Emit call, or blocking I/O",
	Run:  runLockCheck,
}

// blockingIOPkgs are packages whose Read/Write-shaped methods block.
var blockingIOPkgs = map[string]bool{"net": true, "os": true, "bufio": true, "io": true}

// blockingIOMethods are the method names treated as blocking I/O when the
// receiver comes from a blockingIOPkgs package.
var blockingIOMethods = map[string]bool{
	"Read": true, "Write": true, "ReadFrom": true, "WriteTo": true,
	"Accept": true, "Flush": true, "Sync": true, "ReadFull": true, "Copy": true,
}

func runLockCheck(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkLockBody(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkLockBody(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// hold is one open mutex acquisition.
type hold struct {
	expr     string // receiver expression text, e.g. "c.mu"
	deferred bool
}

// lockState tracks held mutexes through one function body.
type lockState struct {
	pass  *Pass
	holds []hold
}

func checkLockBody(pass *Pass, body *ast.BlockStmt) {
	st := &lockState{pass: pass}
	st.stmts(body.List)
}

// stmts walks one statement list in order, updating holds and flagging
// blocking operations while any hold is open.
func (st *lockState) stmts(list []ast.Stmt) {
	for _, stmt := range list {
		st.stmt(stmt)
	}
}

func (st *lockState) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if recv, kind, ok := st.lockCall(s.X); ok {
			switch kind {
			case "Lock", "RLock":
				st.holds = append(st.holds, hold{expr: recv})
			case "Unlock", "RUnlock":
				st.release(recv)
			}
			return
		}
		st.expr(s.X)
	case *ast.DeferStmt:
		if recv, kind, ok := st.lockCall(s.Call); ok && (kind == "Unlock" || kind == "RUnlock") {
			st.markDeferred(recv)
			return
		}
		// A deferred call runs at return, when this function's locks are
		// no longer the caller's concern; only its arguments evaluate now.
		for _, arg := range s.Call.Args {
			st.expr(arg)
		}
	case *ast.GoStmt:
		// The goroutine body runs concurrently without our locks; its
		// arguments evaluate now.
		for _, arg := range s.Call.Args {
			st.expr(arg)
		}
	case *ast.SendStmt:
		st.flagBlocking(s.Pos(), "channel send")
		st.expr(s.Chan)
		st.expr(s.Value)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			st.expr(e)
		}
		for _, e := range s.Lhs {
			st.expr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			st.expr(e)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			st.stmt(s.Init)
		}
		st.expr(s.Cond)
		st.branch(s.Body.List)
		if s.Else != nil {
			st.branch([]ast.Stmt{s.Else})
		}
	case *ast.ForStmt:
		if s.Init != nil {
			st.stmt(s.Init)
		}
		if s.Cond != nil {
			st.expr(s.Cond)
		}
		st.branch(s.Body.List)
	case *ast.RangeStmt:
		st.expr(s.X)
		st.branch(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			st.stmt(s.Init)
		}
		if s.Tag != nil {
			st.expr(s.Tag)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				st.branch(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				st.branch(cc.Body)
			}
		}
	case *ast.SelectStmt:
		nonBlocking := false
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				nonBlocking = true
			}
		}
		if !nonBlocking && len(st.holds) > 0 {
			st.flagBlocking(s.Pos(), "blocking select")
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				st.branch(cc.Body)
			}
		}
	case *ast.BlockStmt:
		st.branch(s.List)
	case *ast.LabeledStmt:
		st.stmt(s.Stmt)
	case *ast.IncDecStmt:
		st.expr(s.X)
	}
}

// branch walks a nested statement list and restores the hold set after:
// an Unlock inside one branch must not release the lock for the code after
// the branch (the conservative direction for a checker — a lock released
// on only some paths is still a finding waiting to happen on the others).
func (st *lockState) branch(list []ast.Stmt) {
	saved := append([]hold(nil), st.holds...)
	st.stmts(list)
	st.holds = saved
}

// expr scans an expression for blocking operations while locks are held.
func (st *lockState) expr(e ast.Expr) {
	if e == nil || len(st.holds) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed separately with an empty hold set
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				st.flagBlocking(n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			st.call(n)
		}
		return true
	})
}

func (st *lockState) call(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	if name == "Emit" {
		st.flagBlocking(call.Pos(), "Emit call")
		return
	}
	if !blockingIOMethods[name] {
		return
	}
	info := st.pass.Pkg.Info
	// Method on a net/os/bufio/io value, or a package function like
	// io.Copy / io.ReadFull.
	if obj := info.Uses[sel.Sel]; obj != nil {
		if fn, ok := obj.(*types.Func); ok && fn.Pkg() != nil && blockingIOPkgs[fn.Pkg().Path()] {
			st.flagBlocking(call.Pos(), "blocking I/O ("+fn.Pkg().Path()+"."+name+")")
			return
		}
		if recv := recvTypePkg(obj); blockingIOPkgs[recv] {
			st.flagBlocking(call.Pos(), "blocking I/O ("+recv+" "+name+")")
		}
	}
}

// recvTypePkg returns the package path of a method's receiver type, or "".
func recvTypePkg(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	path, _ := namedTypePath(sig.Recv().Type())
	return path
}

// flagBlocking reports every currently held mutex at a blocking operation.
func (st *lockState) flagBlocking(pos token.Pos, what string) {
	for _, h := range st.holds {
		st.pass.Reportf(pos, "mutex %s is held across a %s", h.expr, what)
	}
}

// release drops the most recent hold on recv (LIFO, matching the
// lock/unlock pairing discipline).
func (st *lockState) release(recv string) {
	for i := len(st.holds) - 1; i >= 0; i-- {
		if st.holds[i].expr == recv && !st.holds[i].deferred {
			st.holds = append(st.holds[:i], st.holds[i+1:]...)
			return
		}
	}
}

// markDeferred records that recv's most recent hold is released only at
// function exit; without a matching open hold (defer before Lock, or a
// helper locking pattern) it opens a hold outright — the lock is evidently
// meant to be held from here on.
func (st *lockState) markDeferred(recv string) {
	for i := len(st.holds) - 1; i >= 0; i-- {
		if st.holds[i].expr == recv {
			st.holds[i].deferred = true
			return
		}
	}
	st.holds = append(st.holds, hold{expr: recv, deferred: true})
}

// lockCall matches `<expr>.Lock/RLock/Unlock/RUnlock()` and returns the
// receiver expression's text and the method name. Only receivers that are
// plausibly sync.Mutex/RWMutex values qualify: when type information is
// available the receiver must come from package sync (possibly embedded);
// without it, any receiver matches (golden fixtures).
func (st *lockState) lockCall(e ast.Expr) (recv, kind string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	if obj := st.pass.Pkg.Info.Uses[sel.Sel]; obj != nil {
		fn, isFn := obj.(*types.Func)
		if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return "", "", false
		}
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}
