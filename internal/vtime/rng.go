package vtime

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64-seeded xorshift128+), embedded here so simulations do not
// depend on global math/rand state and remain reproducible across runs and
// Go versions.
//
// RNG is not safe for concurrent use; give each simulated component its own
// generator via Split.
type RNG struct {
	s0, s1 uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r := &RNG{s0: next(), s1: next()}
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1
	}
	return r
}

// Split derives an independent generator whose stream is a deterministic
// function of the parent's seed material and the label.
func (r *RNG) Split(label uint64) *RNG {
	return NewRNG(r.s0 ^ (label * 0x9e3779b97f4a7c15) ^ (r.s1 << 1))
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It returns 0 when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Box-Muller, polar form).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
