// Package vtime provides a deterministic virtual clock and latency
// distributions for the SAAD simulation substrate.
//
// All experiment timelines in this repository run on virtual time: I/O
// operations report a sampled virtual cost instead of sleeping, so a
// "50-minute" fault-injection experiment completes in milliseconds while
// producing reproducible timestamps, durations and windows.
package vtime

import (
	"fmt"
	"sync"
	"time"
)

// Clock is a monotonic virtual clock. The zero value is not usable; construct
// with NewClock. Clock is safe for concurrent use.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// NewClock returns a clock positioned at the given epoch.
func NewClock(epoch time.Time) *Clock {
	return &Clock{now: epoch}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new time. Negative
// durations are ignored so the clock stays monotonic.
func (c *Clock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now = c.now.Add(d)
	}
	return c.now
}

// AdvanceTo moves the clock forward to t if t is later than the current
// virtual time, and returns the (possibly unchanged) current time.
func (c *Clock) AdvanceTo(t time.Time) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.After(c.now) {
		c.now = t
	}
	return c.now
}

// Since returns the elapsed virtual time since t.
func (c *Clock) Since(t time.Time) time.Duration {
	return c.Now().Sub(t)
}

// Cursor is a single-goroutine view of virtual time used by one simulated
// task: it starts at a point on the parent clock and accumulates the virtual
// cost of the operations the task performs. Cursors never move the parent
// clock; the caller decides whether to publish the cursor's end time back via
// Clock.AdvanceTo.
type Cursor struct {
	start   time.Time
	elapsed time.Duration
}

// NewCursor returns a cursor anchored at start.
func NewCursor(start time.Time) *Cursor {
	return &Cursor{start: start}
}

// Add accumulates virtual cost d (negative values are ignored).
func (c *Cursor) Add(d time.Duration) {
	if d > 0 {
		c.elapsed += d
	}
}

// Now returns the cursor's current virtual time (start + accumulated cost).
func (c *Cursor) Now() time.Time { return c.start.Add(c.elapsed) }

// Start returns the cursor's anchor time.
func (c *Cursor) Start() time.Time { return c.start }

// Elapsed returns the accumulated virtual cost.
func (c *Cursor) Elapsed() time.Duration { return c.elapsed }

// String implements fmt.Stringer for debugging.
func (c *Cursor) String() string {
	return fmt.Sprintf("vtime.Cursor{start: %s, elapsed: %s}", c.start.Format(time.RFC3339Nano), c.elapsed)
}
