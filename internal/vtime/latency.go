package vtime

import (
	"fmt"
	"math"
	"time"
)

// LatencyModel samples virtual durations for a simulated operation (a disk
// write, a network hop, a lock wait). Implementations must be deterministic
// given the RNG they are handed.
type LatencyModel interface {
	// Sample draws one duration.
	Sample(r *RNG) time.Duration
}

// Fixed is a latency model that always returns the same duration.
type Fixed time.Duration

var _ LatencyModel = Fixed(0)

// Sample implements LatencyModel.
func (f Fixed) Sample(*RNG) time.Duration { return time.Duration(f) }

// LogNormal models latency as a log-normal distribution, the standard choice
// for I/O and RPC service times: most samples cluster near the median with a
// heavy right tail.
type LogNormal struct {
	// Median is the distribution median (exp(mu)).
	Median time.Duration
	// Sigma is the shape parameter; 0.25-0.5 gives a mild tail, >1 a heavy
	// tail. Non-positive sigma degenerates to Fixed(Median).
	Sigma float64
	// Max optionally clamps samples; zero means no clamp.
	Max time.Duration
}

var _ LatencyModel = LogNormal{}

// Sample implements LatencyModel.
func (l LogNormal) Sample(r *RNG) time.Duration {
	if l.Median <= 0 {
		return 0
	}
	if l.Sigma <= 0 {
		return l.Median
	}
	d := time.Duration(float64(l.Median) * math.Exp(l.Sigma*r.NormFloat64()))
	if l.Max > 0 && d > l.Max {
		d = l.Max
	}
	if d < 0 {
		d = 0
	}
	return d
}

// String implements fmt.Stringer.
func (l LogNormal) String() string {
	return fmt.Sprintf("lognormal(median=%s, sigma=%.2f)", l.Median, l.Sigma)
}

// Uniform samples uniformly in [Min, Max].
type Uniform struct {
	Min, Max time.Duration
}

var _ LatencyModel = Uniform{}

// Sample implements LatencyModel.
func (u Uniform) Sample(r *RNG) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(r.Float64()*float64(u.Max-u.Min))
}

// Exponential samples an exponential distribution with the given mean,
// typically used for inter-arrival times.
type Exponential struct {
	Mean time.Duration
}

var _ LatencyModel = Exponential{}

// Sample implements LatencyModel.
func (e Exponential) Sample(r *RNG) time.Duration {
	if e.Mean <= 0 {
		return 0
	}
	return time.Duration(float64(e.Mean) * r.ExpFloat64())
}

// Scaled wraps a model and multiplies every sample by Factor; the fault
// injector uses it to model slowdowns such as disk hogs.
type Scaled struct {
	Base   LatencyModel
	Factor float64
}

var _ LatencyModel = Scaled{}

// Sample implements LatencyModel.
func (s Scaled) Sample(r *RNG) time.Duration {
	if s.Base == nil {
		return 0
	}
	d := s.Base.Sample(r)
	if s.Factor <= 0 {
		return d
	}
	return time.Duration(float64(d) * s.Factor)
}
