package vtime

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestClockAdvance(t *testing.T) {
	c := NewClock(epoch)
	if got := c.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", got, epoch)
	}
	got := c.Advance(5 * time.Second)
	want := epoch.Add(5 * time.Second)
	if !got.Equal(want) {
		t.Fatalf("Advance = %v, want %v", got, want)
	}
	if got := c.Since(epoch); got != 5*time.Second {
		t.Fatalf("Since = %v, want 5s", got)
	}
}

func TestClockAdvanceNegativeIgnored(t *testing.T) {
	c := NewClock(epoch)
	c.Advance(-time.Hour)
	if got := c.Now(); !got.Equal(epoch) {
		t.Fatalf("negative advance moved clock to %v", got)
	}
}

func TestClockAdvanceToMonotonic(t *testing.T) {
	c := NewClock(epoch)
	c.AdvanceTo(epoch.Add(time.Minute))
	c.AdvanceTo(epoch.Add(30 * time.Second)) // earlier: must not rewind
	if got := c.Now(); !got.Equal(epoch.Add(time.Minute)) {
		t.Fatalf("AdvanceTo rewound clock to %v", got)
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	c := NewClock(epoch)
	const (
		workers = 8
		steps   = 1000
	)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < steps; j++ {
				c.Advance(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	want := epoch.Add(workers * steps * time.Millisecond)
	if got := c.Now(); !got.Equal(want) {
		t.Fatalf("concurrent advance = %v, want %v", got, want)
	}
}

func TestCursorAccumulates(t *testing.T) {
	cur := NewCursor(epoch)
	cur.Add(10 * time.Millisecond)
	cur.Add(5 * time.Millisecond)
	cur.Add(-time.Second) // ignored
	if got := cur.Elapsed(); got != 15*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 15ms", got)
	}
	if got := cur.Now(); !got.Equal(epoch.Add(15 * time.Millisecond)) {
		t.Fatalf("Now = %v", got)
	}
	if got := cur.Start(); !got.Equal(epoch) {
		t.Fatalf("Start = %v", got)
	}
	if cur.String() == "" {
		t.Fatal("String() empty")
	}
}

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestRNGSplitIndependent(t *testing.T) {
	r := NewRNG(7)
	s1 := r.Split(1)
	s2 := r.Split(2)
	if s1.Uint64() == s2.Uint64() {
		t.Fatal("split streams start identically")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(1)
	if got := r.Intn(0); got != 0 {
		t.Fatalf("Intn(0) = %d", got)
	}
	if got := r.Intn(-5); got != 0 {
		t.Fatalf("Intn(-5) = %d", got)
	}
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) covered only %d values", len(seen))
	}
}

func TestRNGBoolEdges(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
	trues := 0
	for i := 0; i < 10000; i++ {
		if r.Bool(0.3) {
			trues++
		}
	}
	if trues < 2700 || trues > 3300 {
		t.Fatalf("Bool(0.3) true rate %d/10000 outside [2700,3300]", trues)
	}
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(99)
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if mean < -0.05 || mean > 0.05 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGExpFloat64Mean(t *testing.T) {
	r := NewRNG(5)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if mean < 0.95 || mean > 1.05 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestLatencyModels(t *testing.T) {
	r := NewRNG(11)
	tests := []struct {
		name  string
		model LatencyModel
		min   time.Duration
		max   time.Duration
	}{
		{"fixed", Fixed(3 * time.Millisecond), 3 * time.Millisecond, 3 * time.Millisecond},
		{"uniform", Uniform{Min: time.Millisecond, Max: 2 * time.Millisecond}, time.Millisecond, 2 * time.Millisecond},
		{"lognormal-clamped", LogNormal{Median: time.Millisecond, Sigma: 1, Max: 10 * time.Millisecond}, 0, 10 * time.Millisecond},
		{"exponential", Exponential{Mean: time.Millisecond}, 0, time.Hour},
		{"scaled", Scaled{Base: Fixed(time.Millisecond), Factor: 4}, 4 * time.Millisecond, 4 * time.Millisecond},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			for i := 0; i < 1000; i++ {
				d := tt.model.Sample(r)
				if d < tt.min || d > tt.max {
					t.Fatalf("sample %v outside [%v, %v]", d, tt.min, tt.max)
				}
			}
		})
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := NewRNG(13)
	m := LogNormal{Median: 10 * time.Millisecond, Sigma: 0.5}
	const n = 20001
	samples := make([]time.Duration, n)
	for i := range samples {
		samples[i] = m.Sample(r)
	}
	// Median of samples should be near the configured median.
	below := 0
	for _, s := range samples {
		if s < 10*time.Millisecond {
			below++
		}
	}
	frac := float64(below) / n
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("fraction below median = %v, want ~0.5", frac)
	}
}

func TestLatencyDegenerateCases(t *testing.T) {
	r := NewRNG(1)
	if d := (LogNormal{Median: 0, Sigma: 1}).Sample(r); d != 0 {
		t.Fatalf("zero-median lognormal = %v", d)
	}
	if d := (LogNormal{Median: time.Second, Sigma: 0}).Sample(r); d != time.Second {
		t.Fatalf("zero-sigma lognormal = %v", d)
	}
	if d := (Exponential{Mean: 0}).Sample(r); d != 0 {
		t.Fatalf("zero-mean exponential = %v", d)
	}
	if d := (Scaled{Base: nil, Factor: 2}).Sample(r); d != 0 {
		t.Fatalf("nil-base scaled = %v", d)
	}
	if d := (Scaled{Base: Fixed(time.Second), Factor: 0}).Sample(r); d != time.Second {
		t.Fatalf("zero-factor scaled = %v", d)
	}
	if d := (Uniform{Min: time.Second, Max: time.Second}).Sample(r); d != time.Second {
		t.Fatalf("degenerate uniform = %v", d)
	}
}
