package stats

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestWelfordBasic(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d, want 8", w.N())
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if !almostEqual(w.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
	if !almostEqual(w.StdDev(), math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("StdDev = %v", w.StdDev())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.N() != 0 {
		t.Fatal("zero value not neutral")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Variance() != 0 {
		t.Fatalf("single obs: mean=%v var=%v", w.Mean(), w.Variance())
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	xs := []float64{1, 2, 3, 10, 20, 30, -5, 0.5, 7, 7, 7}
	for split := 0; split <= len(xs); split++ {
		var a, b, whole Welford
		for i, x := range xs {
			whole.Add(x)
			if i < split {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		if a.N() != whole.N() || !almostEqual(a.Mean(), whole.Mean(), 1e-9) ||
			!almostEqual(a.Variance(), whole.Variance(), 1e-9) {
			t.Fatalf("split %d: merged (n=%d m=%v v=%v) != whole (n=%d m=%v v=%v)",
				split, a.N(), a.Mean(), a.Variance(), whole.N(), whole.Mean(), whole.Variance())
		}
	}
}

// Property: merging in either order yields identical moments.
func TestWelfordMergeCommutativeProperty(t *testing.T) {
	f := func(as, bs []float64) bool {
		clean := func(xs []float64) []float64 {
			out := xs[:0]
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
					out = append(out, x)
				}
			}
			return out
		}
		as, bs = clean(as), clean(bs)
		var a1, b1, a2, b2 Welford
		for _, x := range as {
			a1.Add(x)
			a2.Add(x)
		}
		for _, x := range bs {
			b1.Add(x)
			b2.Add(x)
		}
		a1.Merge(b1)
		b2.Merge(a2)
		return a1.N() == b2.N() &&
			almostEqual(a1.Mean(), b2.Mean(), 1e-6) &&
			almostEqual(a1.Variance(), b2.Variance(), 1e-4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileKnownValues(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
		{75, 40},
		{-5, 15},
		{150, 50},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tt.p, err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	got, err := Percentile(xs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 2.5, 1e-12) {
		t.Fatalf("median of 1..4 = %v, want 2.5", got)
	}
}

func TestPercentileEmpty(t *testing.T) {
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrNoData) {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
	if _, err := PercentileSorted(nil, 50); !errors.Is(err, ErrNoData) {
		t.Fatalf("sorted err = %v, want ErrNoData", err)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	orig := append([]float64(nil), xs...)
	if _, err := Percentile(xs, 90); err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if xs[i] != orig[i] {
			t.Fatalf("input mutated: %v != %v", xs, orig)
		}
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 = math.Mod(math.Abs(p1), 100)
		p2 = math.Mod(math.Abs(p2), 100)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, err1 := Percentile(xs, p1)
		v2, err2 := Percentile(xs, p2)
		if err1 != nil || err2 != nil {
			return false
		}
		lo, hi := minFloat(xs), maxFloat(xs)
		return v1 <= v2 && v1 >= lo && v2 <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: PercentileSorted agrees with Percentile.
func TestPercentileSortedAgreesProperty(t *testing.T) {
	f := func(raw []float64, p float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p = math.Mod(math.Abs(p), 110) // allow >100 edge
		v1, err1 := Percentile(xs, p)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		v2, err2 := PercentileSorted(sorted, p)
		return err1 == nil && err2 == nil && v1 == v2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSkewness(t *testing.T) {
	if _, err := Skewness([]float64{1, 2}); !errors.Is(err, ErrNoData) {
		t.Fatalf("short input err = %v", err)
	}
	sym, err := Skewness([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sym, 0, 1e-9) {
		t.Fatalf("symmetric skew = %v, want 0", sym)
	}
	right, err := Skewness([]float64{1, 1, 1, 1, 100})
	if err != nil {
		t.Fatal(err)
	}
	if right <= 0 {
		t.Fatalf("right-tailed skew = %v, want > 0", right)
	}
	flat, err := Skewness([]float64{2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if flat != 0 {
		t.Fatalf("constant data skew = %v, want 0", flat)
	}
}
