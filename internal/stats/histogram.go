package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-bucket histogram over float64 observations, used by
// the report package for duration distributions and by diagnostics.
// The zero value is not usable; construct with NewHistogram.
type Histogram struct {
	min, max float64
	width    float64
	counts   []int
	under    int
	over     int
	total    int
}

// NewHistogram builds a histogram with n equal-width buckets over [min, max).
// It returns an error for invalid bounds or a non-positive bucket count.
func NewHistogram(min, max float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: histogram needs >= 1 bucket, got %d", n)
	}
	if !(min < max) {
		return nil, fmt.Errorf("stats: histogram bounds [%v, %v) invalid", min, max)
	}
	return &Histogram{
		min:    min,
		max:    max,
		width:  (max - min) / float64(n),
		counts: make([]int, n),
	}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.min:
		h.under++
	case x >= h.max:
		h.over++
	default:
		i := int((x - h.min) / h.width)
		if i >= len(h.counts) { // float edge case at the top boundary
			i = len(h.counts) - 1
		}
		h.counts[i]++
	}
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// Counts returns a copy of the per-bucket counts (excluding under/overflow).
func (h *Histogram) Counts() []int {
	out := make([]int, len(h.counts))
	copy(out, h.counts)
	return out
}

// CountsWithTails returns the per-bucket counts with the underflow count
// prepended and the overflow count appended — the fixed-length vector the
// two-sample distribution tests compare, where tail mass matters as much
// as in-range mass.
func (h *Histogram) CountsWithTails() []int {
	out := make([]int, 0, len(h.counts)+2)
	out = append(out, h.under)
	out = append(out, h.counts...)
	return append(out, h.over)
}

// Underflow returns the number of observations below the histogram range.
func (h *Histogram) Underflow() int { return h.under }

// Overflow returns the number of observations at or above the histogram
// range's upper bound.
func (h *Histogram) Overflow() int { return h.over }

// Reset zeroes every bucket and tail count so the histogram can accumulate
// a fresh epoch with identical bucketing.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.under, h.over, h.total = 0, 0, 0
}

// Render draws an ASCII bar chart with the given maximum bar width.
func (h *Histogram) Render(barWidth int) string {
	if barWidth <= 0 {
		barWidth = 40
	}
	peak := h.under
	for _, c := range h.counts {
		if c > peak {
			peak = c
		}
	}
	if h.over > peak {
		peak = h.over
	}
	if peak == 0 {
		peak = 1
	}
	var b strings.Builder
	bar := func(label string, c int) {
		n := int(math.Round(float64(c) / float64(peak) * float64(barWidth)))
		fmt.Fprintf(&b, "%16s | %-*s %d\n", label, barWidth, strings.Repeat("#", n), c)
	}
	if h.under > 0 {
		bar(fmt.Sprintf("< %.3g", h.min), h.under)
	}
	for i, c := range h.counts {
		lo := h.min + float64(i)*h.width
		bar(fmt.Sprintf("[%.3g,%.3g)", lo, lo+h.width), c)
	}
	if h.over > 0 {
		bar(fmt.Sprintf(">= %.3g", h.max), h.over)
	}
	return b.String()
}

// CumulativeShare reports, for counts sorted descending, the minimum number
// of items whose summed counts reach the given share (0 < share <= 1) of the
// grand total. This is the computation behind Figure 6 ("6 of 29 signatures
// account for 95% of tasks").
func CumulativeShare(counts []int, share float64) (items int, totalItems int) {
	if len(counts) == 0 || share <= 0 {
		return 0, len(counts)
	}
	sorted := make([]int, len(counts))
	copy(sorted, counts)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	var total int
	for _, c := range sorted {
		total += c
	}
	if total == 0 {
		return 0, len(counts)
	}
	if share > 1 {
		share = 1
	}
	target := share * float64(total)
	var cum int
	for i, c := range sorted {
		cum += c
		if float64(cum) >= target {
			return i + 1, len(counts)
		}
	}
	return len(counts), len(counts)
}
