// Package stats implements the statistical primitives SAAD's analyzer is
// built on: streaming moments, percentiles, the normal and Student-t
// distributions, one-proportion hypothesis tests, and k-fold partitioning.
//
// The paper's analyzer (Section 3.3, 4.2) deliberately restricts training to
// "counting and computing percentiles" and runtime detection to hash-map
// lookups, float comparisons and t-tests; this package provides exactly those
// pieces with no external dependencies.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrNoData is returned by operations that need at least one observation.
var ErrNoData = errors.New("stats: no data")

// Welford accumulates count, mean and variance in one pass using Welford's
// online algorithm. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 with no data).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 with fewer than two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Merge combines another accumulator into w (parallel Welford merge).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	mean := w.mean + delta*float64(o.n)/float64(n)
	m2 := w.m2 + o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.n, w.mean, w.m2 = n, mean, m2
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	if p <= 0 {
		return minFloat(xs), nil
	}
	if p >= 100 {
		return maxFloat(xs), nil
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p), nil
}

// PercentileSorted is like Percentile but requires xs to be sorted ascending
// and avoids the copy.
func PercentileSorted(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	if p <= 0 {
		return xs[0], nil
	}
	if p >= 100 {
		return xs[len(xs)-1], nil
	}
	return percentileSorted(xs, p), nil
}

func percentileSorted(sorted []float64, p float64) float64 {
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

func minFloat(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxFloat(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Skewness returns the adjusted Fisher-Pearson sample skewness of xs. The
// analyzer uses it to report how skewed a signature's duration distribution
// is (the paper notes heavily non-skewed flows make percentile thresholds
// meaningless, motivating the k-fold discard).
func Skewness(xs []float64) (float64, error) {
	n := float64(len(xs))
	if len(xs) < 3 {
		return 0, ErrNoData
	}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	sd := w.StdDev()
	if sd == 0 {
		return 0, nil
	}
	var m3 float64
	for _, x := range xs {
		d := (x - w.Mean()) / sd
		m3 += d * d * d
	}
	return n / ((n - 1) * (n - 2)) * m3, nil
}
