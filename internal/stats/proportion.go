package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadProportion is returned when a baseline proportion is outside [0, 1].
var ErrBadProportion = errors.New("stats: baseline proportion outside [0, 1]")

// ProportionTestResult reports the outcome of a one-sided proportion test of
// H0: p <= p0 against H1: p > p0.
type ProportionTestResult struct {
	// N is the number of trials in the sample.
	N int
	// Successes is the number of outlier observations in the sample.
	Successes int
	// P0 is the baseline (training) proportion under H0.
	P0 float64
	// PHat is Successes/N.
	PHat float64
	// Stat is the test statistic (z, or t for the Student variant).
	Stat float64
	// PValue is the one-sided p-value.
	PValue float64
	// Reject reports whether H0 was rejected at the configured significance.
	Reject bool
	// Alpha is the significance level the decision used.
	Alpha float64
}

// String implements fmt.Stringer with a compact report line.
func (r ProportionTestResult) String() string {
	verdict := "accept"
	if r.Reject {
		verdict = "REJECT"
	}
	return fmt.Sprintf("prop-test n=%d k=%d p0=%.4f phat=%.4f stat=%.3f p=%.2e alpha=%g: %s",
		r.N, r.Successes, r.P0, r.PHat, r.Stat, r.PValue, r.Alpha, verdict)
}

// ProportionZTest performs a one-sided one-proportion z-test of
// H0: p <= p0 vs H1: p > p0 at significance alpha.
//
// This is the test the paper's analyzer runs per window per stage
// (Section 3.3.3) with alpha = 0.001: an anomaly is declared when the
// observed proportion of outlier tasks is significantly above the proportion
// observed in training. When p0 is 0 the normal approximation degenerates;
// in that case H0 is rejected exactly when any outlier appears (matching the
// paper's "new signature" rule where anything above a zero baseline is
// significant).
func ProportionZTest(successes, n int, p0, alpha float64) (ProportionTestResult, error) {
	if n <= 0 {
		return ProportionTestResult{}, ErrNoData
	}
	if p0 < 0 || p0 > 1 {
		return ProportionTestResult{}, ErrBadProportion
	}
	if successes < 0 || successes > n {
		return ProportionTestResult{}, fmt.Errorf("stats: successes %d outside [0, %d]", successes, n)
	}
	res := ProportionTestResult{
		N:         n,
		Successes: successes,
		P0:        p0,
		PHat:      float64(successes) / float64(n),
		Alpha:     alpha,
	}
	if p0 == 0 {
		if successes > 0 {
			res.Stat = math.Inf(1)
			res.PValue = 0
			res.Reject = true
		} else {
			res.PValue = 1
		}
		return res, nil
	}
	if p0 == 1 {
		// p can never exceed 1; H0 is never rejected.
		res.PValue = 1
		return res, nil
	}
	se := math.Sqrt(p0 * (1 - p0) / float64(n))
	res.Stat = (res.PHat - p0) / se
	res.PValue = 1 - NormalCDF(res.Stat)
	res.Reject = res.PValue < alpha
	return res, nil
}

// ProportionTTest is the Student-t variant of ProportionZTest: identical
// statistic but compared against a t distribution with n-1 degrees of
// freedom, which is slightly more conservative for small windows. The paper
// describes its test as a t-test; for the window sizes in the evaluation the
// two variants agree.
func ProportionTTest(successes, n int, p0, alpha float64) (ProportionTestResult, error) {
	res, err := ProportionZTest(successes, n, p0, alpha)
	if err != nil {
		return res, err
	}
	if p0 == 0 || p0 == 1 {
		return res, nil
	}
	if n < 2 {
		// Zero degrees of freedom: a single-observation window can never
		// reject.
		res.PValue = 1
		res.Reject = false
		return res, nil
	}
	res.PValue = 1 - StudentTCDF(res.Stat, float64(n-1))
	res.Reject = res.PValue < alpha
	return res, nil
}

// WelchTTest performs a one-sided two-sample Welch t-test of
// H0: mean(a) <= mean(b) vs H1: mean(a) > mean(b). It is exposed for
// duration comparisons in diagnostics and ablation benchmarks.
func WelchTTest(a, b []float64, alpha float64) (ProportionTestResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return ProportionTestResult{}, ErrNoData
	}
	var wa, wb Welford
	for _, x := range a {
		wa.Add(x)
	}
	for _, x := range b {
		wb.Add(x)
	}
	va := wa.Variance() / float64(wa.N())
	vb := wb.Variance() / float64(wb.N())
	se := math.Sqrt(va + vb)
	res := ProportionTestResult{N: len(a) + len(b), Alpha: alpha}
	if se == 0 {
		if wa.Mean() > wb.Mean() {
			res.Stat = math.Inf(1)
			res.PValue = 0
			res.Reject = true
		} else {
			res.PValue = 1
		}
		return res, nil
	}
	res.Stat = (wa.Mean() - wb.Mean()) / se
	// Welch-Satterthwaite degrees of freedom.
	df := (va + vb) * (va + vb) /
		(va*va/float64(wa.N()-1) + vb*vb/float64(wb.N()-1))
	res.PValue = 1 - StudentTCDF(res.Stat, df)
	res.Reject = res.PValue < alpha
	return res, nil
}

// KFoldIndices partitions [0, n) into k contiguous folds of near-equal size
// and returns, for each fold, the held-out index range [start, end). It is
// the partitioning used by the analyzer's cross-validation discard step
// (Section 3.3.2). k is clamped to [1, n].
func KFoldIndices(n, k int) [][2]int {
	if n <= 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	folds := make([][2]int, 0, k)
	base := n / k
	rem := n % k
	start := 0
	for i := 0; i < k; i++ {
		size := base
		if i < rem {
			size++
		}
		folds = append(folds, [2]int{start, start + size})
		start += size
	}
	return folds
}
