package stats

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestProportionZTestRejects(t *testing.T) {
	// Training outlier rate 1%; a window of 1000 tasks with 60 outliers is
	// wildly anomalous (z ~ 15.9) and must be rejected at alpha = 0.001.
	res, err := ProportionZTest(60, 1000, 0.01, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject {
		t.Fatalf("not rejected: %v", res)
	}
	if res.Stat < 10 {
		t.Fatalf("z = %v, want > 10", res.Stat)
	}
}

func TestProportionZTestAcceptsAtBaseline(t *testing.T) {
	res, err := ProportionZTest(10, 1000, 0.01, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject {
		t.Fatalf("rejected at exactly baseline rate: %v", res)
	}
	// Below baseline must also be accepted.
	res, err = ProportionZTest(2, 1000, 0.01, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject {
		t.Fatalf("rejected below baseline: %v", res)
	}
}

func TestProportionZTestZeroBaseline(t *testing.T) {
	// p0 = 0: any outlier is significant (the "new signature" rule).
	res, err := ProportionZTest(1, 50, 0, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject || !math.IsInf(res.Stat, 1) {
		t.Fatalf("zero-baseline with outlier: %v", res)
	}
	res, err = ProportionZTest(0, 50, 0, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject {
		t.Fatalf("zero-baseline, zero outliers rejected: %v", res)
	}
}

func TestProportionZTestOneBaseline(t *testing.T) {
	res, err := ProportionZTest(50, 50, 1, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject {
		t.Fatalf("p0=1 rejected: %v", res)
	}
}

func TestProportionZTestErrors(t *testing.T) {
	if _, err := ProportionZTest(1, 0, 0.5, 0.01); !errors.Is(err, ErrNoData) {
		t.Fatalf("n=0 err = %v", err)
	}
	if _, err := ProportionZTest(1, 10, -0.1, 0.01); !errors.Is(err, ErrBadProportion) {
		t.Fatalf("p0<0 err = %v", err)
	}
	if _, err := ProportionZTest(1, 10, 1.5, 0.01); !errors.Is(err, ErrBadProportion) {
		t.Fatalf("p0>1 err = %v", err)
	}
	if _, err := ProportionZTest(11, 10, 0.5, 0.01); err == nil {
		t.Fatal("successes > n accepted")
	}
	if _, err := ProportionZTest(-1, 10, 0.5, 0.01); err == nil {
		t.Fatal("negative successes accepted")
	}
}

func TestProportionTTestMoreConservative(t *testing.T) {
	// With a small window the t variant must have a p-value >= the z variant.
	zres, err := ProportionZTest(4, 20, 0.05, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	tres, err := ProportionTTest(4, 20, 0.05, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if tres.PValue < zres.PValue {
		t.Fatalf("t p-value %v < z p-value %v", tres.PValue, zres.PValue)
	}
}

func TestProportionTTestLargeNAgreesWithZ(t *testing.T) {
	zres, err := ProportionZTest(150, 10000, 0.01, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	tres, err := ProportionTTest(150, 10000, 0.01, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if zres.Reject != tres.Reject {
		t.Fatalf("large-n disagreement: z=%v t=%v", zres, tres)
	}
	if !almostEqual(zres.PValue, tres.PValue, 1e-4) {
		t.Fatalf("p-values diverge: %v vs %v", zres.PValue, tres.PValue)
	}
}

func TestProportionResultString(t *testing.T) {
	res, err := ProportionZTest(60, 1000, 0.01, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	if !strings.Contains(s, "REJECT") {
		t.Fatalf("String() = %q, want REJECT marker", s)
	}
}

// Property: rejection is monotone in the number of successes.
func TestProportionMonotoneProperty(t *testing.T) {
	f := func(k uint8, n uint16, p0f uint16) bool {
		n2 := int(n%500) + 2
		k1 := int(k) % (n2 + 1)
		p0 := float64(p0f%99+1) / 100
		r1, err1 := ProportionZTest(k1, n2, p0, 0.001)
		if err1 != nil {
			return false
		}
		if k1 == n2 {
			return true
		}
		r2, err2 := ProportionZTest(k1+1, n2, p0, 0.001)
		if err2 != nil {
			return false
		}
		// More successes => p-value cannot increase.
		return r2.PValue <= r1.PValue+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWelchTTest(t *testing.T) {
	slow := []float64{20, 21, 19, 22, 20, 21, 20, 19.5}
	fast := []float64{10, 11, 9, 10.5, 10, 9.5, 10, 10.2}
	res, err := WelchTTest(slow, fast, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject {
		t.Fatalf("clear slowdown not detected: %v", res)
	}
	// Reverse direction must not reject.
	res, err = WelchTTest(fast, slow, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject {
		t.Fatalf("reverse direction rejected: %v", res)
	}
}

func TestWelchTTestDegenerate(t *testing.T) {
	if _, err := WelchTTest([]float64{1}, []float64{1, 2}, 0.01); !errors.Is(err, ErrNoData) {
		t.Fatalf("short sample err = %v", err)
	}
	res, err := WelchTTest([]float64{5, 5, 5}, []float64{3, 3, 3}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject {
		t.Fatalf("zero-variance clear difference not rejected: %v", res)
	}
	res, err = WelchTTest([]float64{3, 3, 3}, []float64{3, 3, 3}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject {
		t.Fatalf("identical zero-variance samples rejected: %v", res)
	}
}

func TestKFoldIndices(t *testing.T) {
	folds := KFoldIndices(10, 3)
	if len(folds) != 3 {
		t.Fatalf("folds = %v", folds)
	}
	// Must partition [0, 10) exactly.
	covered := 0
	prevEnd := 0
	for _, f := range folds {
		if f[0] != prevEnd {
			t.Fatalf("gap/overlap in folds %v", folds)
		}
		covered += f[1] - f[0]
		prevEnd = f[1]
	}
	if covered != 10 || prevEnd != 10 {
		t.Fatalf("folds do not cover input: %v", folds)
	}
	// Sizes differ by at most one.
	if folds[0][1]-folds[0][0] != 4 {
		t.Fatalf("first fold size = %d, want 4", folds[0][1]-folds[0][0])
	}
}

func TestKFoldIndicesEdges(t *testing.T) {
	if got := KFoldIndices(0, 5); got != nil {
		t.Fatalf("n=0 gave %v", got)
	}
	if got := KFoldIndices(3, 10); len(got) != 3 {
		t.Fatalf("k>n gave %v", got)
	}
	if got := KFoldIndices(5, 0); len(got) != 1 {
		t.Fatalf("k=0 gave %v", got)
	}
}

// Property: KFoldIndices always partitions [0, n) exactly.
func TestKFoldPartitionProperty(t *testing.T) {
	f := func(n uint16, k uint8) bool {
		nn := int(n % 2000)
		kk := int(k % 20)
		folds := KFoldIndices(nn, kk)
		if nn == 0 {
			return folds == nil
		}
		prev := 0
		for _, fo := range folds {
			if fo[0] != prev || fo[1] < fo[0] {
				return false
			}
			prev = fo[1]
		}
		return prev == nn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
