package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	tests := []struct {
		z, want, tol float64
	}{
		{0, 0.5, 1e-12},
		{1, 0.8413447460685429, 1e-10},
		{-1, 0.15865525393145705, 1e-10},
		{1.959963984540054, 0.975, 1e-9},
		{3.090232306167813, 0.999, 1e-9}, // the paper's alpha = 0.001 one-sided critical value
		{-8, 6.22e-16, 1e-15},
	}
	for _, tt := range tests {
		if got := NormalCDF(tt.z); !almostEqual(got, tt.want, tt.tol) {
			t.Errorf("NormalCDF(%v) = %v, want %v", tt.z, got, tt.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 0.999} {
		z := NormalQuantile(p)
		if got := NormalCDF(z); !almostEqual(got, p, 1e-8) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) {
		t.Error("Quantile(0) != -Inf")
	}
	if !math.IsInf(NormalQuantile(1), 1) {
		t.Error("Quantile(1) != +Inf")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) {
		t.Error("out-of-range quantile not NaN")
	}
	if !math.IsNaN(NormalQuantile(math.NaN())) {
		t.Error("NaN quantile not NaN")
	}
}

func TestRegularizedIncompleteBeta(t *testing.T) {
	tests := []struct {
		a, b, x, want, tol float64
	}{
		{1, 1, 0.3, 0.3, 1e-12},      // I_x(1,1) = x
		{2, 2, 0.5, 0.5, 1e-12},      // symmetric
		{2, 1, 0.5, 0.25, 1e-12},     // I_x(2,1) = x^2
		{1, 2, 0.5, 0.75, 1e-12},     // 1-(1-x)^2
		{5, 3, 0.7, 0.6470695, 1e-7}, // binomial-sum identity: sum_{j=5}^{7} C(7,j) 0.7^j 0.3^{7-j}
		{0.5, 0.5, 0.5, 0.5, 1e-10},  // arcsine distribution median
		{10, 10, 0.5, 0.5, 1e-10},    // symmetric
	}
	for _, tt := range tests {
		if got := RegularizedIncompleteBeta(tt.a, tt.b, tt.x); !almostEqual(got, tt.want, tt.tol) {
			t.Errorf("I_%v(%v,%v) = %v, want %v", tt.x, tt.a, tt.b, got, tt.want)
		}
	}
	if got := RegularizedIncompleteBeta(2, 3, 0); got != 0 {
		t.Errorf("I_0 = %v", got)
	}
	if got := RegularizedIncompleteBeta(2, 3, 1); got != 1 {
		t.Errorf("I_1 = %v", got)
	}
	if got := RegularizedIncompleteBeta(-1, 3, 0.5); !math.IsNaN(got) {
		t.Errorf("invalid a gave %v, want NaN", got)
	}
}

// Property: I_x(a,b) is monotone non-decreasing in x and within [0,1].
func TestIncompleteBetaMonotoneProperty(t *testing.T) {
	f := func(a, b, x1, x2 float64) bool {
		a = 0.1 + math.Mod(math.Abs(a), 20)
		b = 0.1 + math.Mod(math.Abs(b), 20)
		x1 = math.Mod(math.Abs(x1), 1)
		x2 = math.Mod(math.Abs(x2), 1)
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		v1 := RegularizedIncompleteBeta(a, b, x1)
		v2 := RegularizedIncompleteBeta(a, b, x2)
		return v1 >= -1e-12 && v2 <= 1+1e-12 && v1 <= v2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStudentTCDFKnownValues(t *testing.T) {
	tests := []struct {
		t0, df, want, tol float64
	}{
		{0, 5, 0.5, 1e-12},
		{1, 1, 0.75, 1e-9},                 // Cauchy: atan(1)/pi + 0.5
		{2.015048372669157, 5, 0.95, 1e-7}, // t_{0.95,5}
		{3.747, 4, 0.99, 1e-4},
		{-2.015048372669157, 5, 0.05, 1e-7},
	}
	for _, tt := range tests {
		if got := StudentTCDF(tt.t0, tt.df); !almostEqual(got, tt.want, tt.tol) {
			t.Errorf("StudentTCDF(%v, %v) = %v, want %v", tt.t0, tt.df, got, tt.want)
		}
	}
}

func TestStudentTCDFConvergesToNormal(t *testing.T) {
	for _, z := range []float64{-3, -1, 0, 0.5, 2, 3.09} {
		tv := StudentTCDF(z, 1e6)
		nv := NormalCDF(z)
		if !almostEqual(tv, nv, 1e-5) {
			t.Errorf("t(df=1e6) at %v = %v, normal = %v", z, tv, nv)
		}
	}
}

func TestStudentTCDFEdges(t *testing.T) {
	if !math.IsNaN(StudentTCDF(1, 0)) {
		t.Error("df=0 not NaN")
	}
	if got := StudentTCDF(math.Inf(1), 3); got != 1 {
		t.Errorf("CDF(+Inf) = %v", got)
	}
	if got := StudentTCDF(math.Inf(-1), 3); got != 0 {
		t.Errorf("CDF(-Inf) = %v", got)
	}
}

// Property: Student-t CDF is symmetric: F(-t) = 1 - F(t).
func TestStudentTSymmetryProperty(t *testing.T) {
	f := func(t0, df float64) bool {
		t0 = math.Mod(t0, 50)
		df = 0.5 + math.Mod(math.Abs(df), 100)
		if math.IsNaN(t0) {
			return true
		}
		return almostEqual(StudentTCDF(-t0, df), 1-StudentTCDF(t0, df), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
