package stats

import "math"

// NormalCDF returns P(Z <= z) for a standard normal variate.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalQuantile returns the z value such that NormalCDF(z) = p, using the
// Acklam rational approximation (relative error < 1.15e-9). It returns
// +/-Inf for p at the boundaries and NaN outside (0, 1).
func NormalQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}

	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}

	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	return x
}

// lgamma returns log|Gamma(x)| without the sign bookkeeping of math.Lgamma.
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// RegularizedIncompleteBeta computes I_x(a, b), the regularized incomplete
// beta function, via the continued-fraction expansion (Numerical Recipes
// betacf). It powers the Student-t CDF.
func RegularizedIncompleteBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	case a <= 0 || b <= 0:
		return math.NaN()
	}
	ln := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// using the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpMin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpMin {
		d = fpMin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// RegularizedGammaP computes P(a, x), the regularized lower incomplete
// gamma function, via the series expansion for x < a+1 and the continued
// fraction (modified Lentz) otherwise — the Numerical Recipes gammp split.
// It powers the chi-square CDF.
func RegularizedGammaP(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case math.IsInf(x, 1):
		return 1
	}
	if x < a+1 {
		return gammaPSeries(a, x)
	}
	return 1 - gammaQContinuedFraction(a, x)
}

// gammaPSeries evaluates P(a, x) by its power series (converges fast for
// x < a+1).
func gammaPSeries(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 3e-14
	)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lgamma(a))
}

// gammaQContinuedFraction evaluates Q(a, x) = 1 - P(a, x) by the continued
// fraction with the modified Lentz method (converges fast for x >= a+1).
func gammaQContinuedFraction(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 3e-14
		fpMin   = 1e-300
	)
	b := x + 1 - a
	c := 1 / fpMin
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = b + an/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h * math.Exp(-x+a*math.Log(x)-lgamma(a))
}

// ChiSquareCDF returns P(X <= x) for a chi-square variate with df degrees
// of freedom. For df <= 0 it returns NaN.
func ChiSquareCDF(x, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if x <= 0 {
		return 0
	}
	return RegularizedGammaP(df/2, x/2)
}

// StudentTCDF returns P(T <= t) for a Student-t variate with df degrees of
// freedom. For df <= 0 it returns NaN; as df grows it converges to
// NormalCDF.
func StudentTCDF(t float64, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	x := df / (df + t*t)
	p := 0.5 * RegularizedIncompleteBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}
