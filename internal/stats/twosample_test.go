package stats

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestChiSquareCDF(t *testing.T) {
	// Reference values from standard chi-square tables.
	cases := []struct {
		x, df, want float64
	}{
		{0, 1, 0},
		{3.841, 1, 0.95},
		{6.635, 1, 0.99},
		{5.991, 2, 0.95},
		{1.386, 2, 0.50}, // median of chi2(2) = 2 ln 2
		{11.070, 5, 0.95},
		{18.307, 10, 0.95},
		{124.342, 100, 0.95},
		{math.Inf(1), 3, 1},
	}
	for _, c := range cases {
		got := ChiSquareCDF(c.x, c.df)
		if math.Abs(got-c.want) > 5e-4 {
			t.Errorf("ChiSquareCDF(%v, %v) = %v, want %v", c.x, c.df, got, c.want)
		}
	}
	if !math.IsNaN(ChiSquareCDF(1, 0)) {
		t.Error("df=0 should be NaN")
	}
	if !math.IsNaN(ChiSquareCDF(1, -3)) {
		t.Error("df<0 should be NaN")
	}
}

func TestRegularizedGammaP(t *testing.T) {
	// P(a, x) for integer a has the closed form 1 - e^-x sum x^k/k!.
	closed := func(a int, x float64) float64 {
		sum := 0.0
		term := 1.0
		for k := 0; k < a; k++ {
			if k > 0 {
				term *= x / float64(k)
			}
			sum += term
		}
		return 1 - math.Exp(-x)*sum
	}
	for _, a := range []int{1, 2, 5, 20} {
		for _, x := range []float64{0.1, 0.5, 1, 3, 10, 40} {
			got := RegularizedGammaP(float64(a), x)
			want := closed(a, x)
			if math.Abs(got-want) > 1e-10 {
				t.Errorf("RegularizedGammaP(%d, %v) = %v, want %v", a, x, got, want)
			}
		}
	}
}

func TestChiSquareTwoSample(t *testing.T) {
	cases := []struct {
		name       string
		a, b       []int
		alpha      float64
		wantReject bool
		wantErr    error
	}{
		{
			name: "identical histograms accept",
			a:    []int{100, 200, 300, 200, 100},
			b:    []int{100, 200, 300, 200, 100},
			// Identical counts give chi2 = 0, p = 1.
			alpha: 0.05, wantReject: false,
		},
		{
			name:  "same distribution different sizes accept",
			a:     []int{100, 200, 300, 200, 100},
			b:     []int{50, 100, 150, 100, 50},
			alpha: 0.05, wantReject: false,
		},
		{
			name:  "shifted distribution rejects",
			a:     []int{500, 300, 100, 50, 10},
			b:     []int{10, 50, 100, 300, 500},
			alpha: 0.001, wantReject: true,
		},
		{
			name:  "heavier tail rejects",
			a:     []int{900, 80, 15, 4, 1},
			b:     []int{700, 80, 60, 80, 80},
			alpha: 0.001, wantReject: true,
		},
		{
			name:  "small noise accepts at strict alpha",
			a:     []int{480, 260, 140, 80, 40},
			b:     []int{470, 270, 145, 75, 40},
			alpha: 0.001, wantReject: false,
		},
		{
			name:  "sparse buckets pool without rejecting",
			a:     []int{1, 0, 1, 0, 1, 997},
			b:     []int{0, 1, 0, 1, 0, 998},
			alpha: 0.05, wantReject: false,
		},
		{
			name:    "bucket mismatch",
			a:       []int{1, 2},
			b:       []int{1, 2, 3},
			alpha:   0.05,
			wantErr: ErrBucketMismatch,
		},
		{
			name:    "empty side",
			a:       []int{0, 0, 0},
			b:       []int{1, 2, 3},
			alpha:   0.05,
			wantErr: ErrNoData,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := ChiSquareTwoSample(c.a, c.b, c.alpha)
			if c.wantErr != nil {
				if !errors.Is(err, c.wantErr) {
					t.Fatalf("err = %v, want %v", err, c.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if res.Reject != c.wantReject {
				t.Fatalf("Reject = %v (%s), want %v", res.Reject, res, c.wantReject)
			}
			if res.PValue < 0 || res.PValue > 1 {
				t.Fatalf("PValue = %v outside [0, 1]", res.PValue)
			}
		})
	}
}

func TestChiSquareTwoSampleNegativeCount(t *testing.T) {
	if _, err := ChiSquareTwoSample([]int{1, -2}, []int{1, 2}, 0.05); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestChiSquareTwoSampleOneMergedBucket(t *testing.T) {
	// Everything pools into a single bucket: no resolution, never reject.
	res, err := ChiSquareTwoSample([]int{2, 1}, []int{1, 1}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject || res.PValue != 1 {
		t.Fatalf("degenerate pooling rejected: %s", res)
	}
}

func TestTwoSampleResultString(t *testing.T) {
	res, err := ChiSquareTwoSample([]int{500, 300, 100}, []int{100, 300, 500}, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), "REJECT") {
		t.Fatalf("String() = %q", res.String())
	}
}

func TestHistogramTailsAndReset(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 5, 9.9, 10, 42} {
		h.Add(x)
	}
	if h.Underflow() != 1 || h.Overflow() != 2 {
		t.Fatalf("under=%d over=%d", h.Underflow(), h.Overflow())
	}
	wt := h.CountsWithTails()
	if len(wt) != 7 || wt[0] != 1 || wt[6] != 2 {
		t.Fatalf("CountsWithTails = %v", wt)
	}
	sum := 0
	for _, c := range wt {
		sum += c
	}
	if sum != h.Total() {
		t.Fatalf("tails sum %d != total %d", sum, h.Total())
	}
	h.Reset()
	if h.Total() != 0 || h.Underflow() != 0 || h.Overflow() != 0 {
		t.Fatal("Reset left counts behind")
	}
	for _, c := range h.Counts() {
		if c != 0 {
			t.Fatal("Reset left bucket counts behind")
		}
	}
}
