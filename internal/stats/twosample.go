package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrBucketMismatch is returned when the two histograms of a two-sample
// test have different bucket counts.
var ErrBucketMismatch = errors.New("stats: histograms have different bucket counts")

// TwoSampleResult reports the outcome of a two-sample distribution test of
// H0: both samples are drawn from the same distribution.
type TwoSampleResult struct {
	// NA and NB are the two sample sizes (summed histogram counts).
	NA, NB int
	// Stat is the chi-square statistic over the merged buckets.
	Stat float64
	// DF is the degrees of freedom (merged buckets - 1).
	DF float64
	// PValue is P(X >= Stat) under H0.
	PValue float64
	// Reject reports whether H0 was rejected at the configured significance.
	Reject bool
	// Alpha is the significance level the decision used.
	Alpha float64
	// Buckets is the number of merged buckets the statistic ran over (after
	// pooling sparse adjacent buckets).
	Buckets int
}

// String implements fmt.Stringer with a compact report line.
func (r TwoSampleResult) String() string {
	verdict := "accept"
	if r.Reject {
		verdict = "REJECT"
	}
	return fmt.Sprintf("chi2-2samp nA=%d nB=%d chi2=%.3f df=%.0f p=%.2e alpha=%g: %s",
		r.NA, r.NB, r.Stat, r.DF, r.PValue, r.Alpha, verdict)
}

// minExpectedPerBucket is the classical chi-square validity rule: adjacent
// buckets are pooled until every merged bucket holds at least this many
// observations across both samples, so the asymptotic distribution of the
// statistic is trustworthy even for sparse histogram tails.
const minExpectedPerBucket = 5

// ChiSquareTwoSample performs a two-sample chi-square homogeneity test over
// two histograms with identical bucketing: H0 is that both count vectors
// are draws from the same underlying distribution. Sparse adjacent buckets
// are pooled (left to right) until each merged bucket holds at least 5
// observations across both samples; the test needs at least two merged
// buckets and one observation on each side.
//
// This is the distribution-shift test of the model-lifecycle drift monitor
// (reference duration histogram vs the current epoch's), but it applies to
// any pair of equally-bucketed histograms.
func ChiSquareTwoSample(a, b []int, alpha float64) (TwoSampleResult, error) {
	if len(a) != len(b) {
		return TwoSampleResult{}, ErrBucketMismatch
	}
	res := TwoSampleResult{Alpha: alpha}
	for i := range a {
		if a[i] < 0 || b[i] < 0 {
			return TwoSampleResult{}, fmt.Errorf("stats: negative bucket count at index %d", i)
		}
		res.NA += a[i]
		res.NB += b[i]
	}
	if res.NA == 0 || res.NB == 0 {
		return TwoSampleResult{}, ErrNoData
	}

	// Pool sparse adjacent buckets so every merged bucket's combined count
	// reaches the validity floor; a sparse trailing run merges into the
	// last kept bucket.
	var ma, mb []int
	accA, accB := 0, 0
	for i := range a {
		accA += a[i]
		accB += b[i]
		if accA+accB >= minExpectedPerBucket {
			ma = append(ma, accA)
			mb = append(mb, accB)
			accA, accB = 0, 0
		}
	}
	if accA+accB > 0 {
		if len(ma) == 0 {
			ma = append(ma, accA)
			mb = append(mb, accB)
		} else {
			ma[len(ma)-1] += accA
			mb[len(mb)-1] += accB
		}
	}
	res.Buckets = len(ma)
	if res.Buckets < 2 {
		// Everything pooled into one bucket: the histograms cannot be told
		// apart at this resolution. Not an error — just no evidence.
		res.PValue = 1
		return res, nil
	}

	// Chi-square homogeneity statistic: expected count of sample s in
	// bucket i is (row total)*(column total)/(grand total).
	nA := float64(res.NA)
	nB := float64(res.NB)
	total := nA + nB
	for i := range ma {
		col := float64(ma[i] + mb[i])
		expA := col * nA / total
		expB := col * nB / total
		if expA > 0 {
			d := float64(ma[i]) - expA
			res.Stat += d * d / expA
		}
		if expB > 0 {
			d := float64(mb[i]) - expB
			res.Stat += d * d / expB
		}
	}
	res.DF = float64(res.Buckets - 1)
	res.PValue = 1 - ChiSquareCDF(res.Stat, res.DF)
	if math.IsNaN(res.PValue) {
		res.PValue = 1
	}
	res.Reject = res.PValue < alpha
	return res, nil
}
