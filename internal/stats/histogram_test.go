package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasic(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 100} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Fatalf("Total = %d", h.Total())
	}
	counts := h.Counts()
	want := []int{2, 1, 1, 0, 1} // [0,2):{0,1.9}, [2,4):{2}, [4,6):{5}, [8,10):{9.99}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
	if h.under != 1 || h.over != 2 {
		t.Fatalf("under=%d over=%d", h.under, h.over)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("0 buckets accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("empty range accepted")
	}
	if _, err := NewHistogram(10, 5, 3); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestHistogramRender(t *testing.T) {
	h, err := NewHistogram(0, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(-1)
	h.Add(1)
	h.Add(1)
	h.Add(3)
	h.Add(9)
	out := h.Render(10)
	if !strings.Contains(out, "#") {
		t.Fatalf("render missing bars:\n%s", out)
	}
	if !strings.Contains(out, "< 0") || !strings.Contains(out, ">= 4") {
		t.Fatalf("render missing under/overflow rows:\n%s", out)
	}
	// Renders with default width when given nonsense.
	if out := h.Render(-1); out == "" {
		t.Fatal("negative width render empty")
	}
	// Empty histogram renders without panic.
	h2, err := NewHistogram(0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = h2.Render(5)
}

func TestHistogramCountsIsCopy(t *testing.T) {
	h, err := NewHistogram(0, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(1)
	c := h.Counts()
	c[0] = 999
	if h.Counts()[0] == 999 {
		t.Fatal("Counts exposed internal slice")
	}
}

func TestCumulativeShare(t *testing.T) {
	// Fig. 6 style: a few heavy signatures dominate.
	counts := []int{9000, 500, 300, 100, 50, 30, 10, 5, 3, 2}
	items, total := CumulativeShare(counts, 0.95)
	if total != 10 {
		t.Fatalf("total = %d", total)
	}
	// 9000+500 = 9500 -> 95.0% of 10000: exactly two items.
	if items != 2 {
		t.Fatalf("items = %d, want 2", items)
	}
	items, _ = CumulativeShare(counts, 1.0)
	if items != 10 {
		t.Fatalf("full share items = %d, want 10", items)
	}
	items, _ = CumulativeShare(counts, 2.0) // clamped to 1
	if items != 10 {
		t.Fatalf("clamped share items = %d", items)
	}
}

func TestCumulativeShareEdges(t *testing.T) {
	if items, total := CumulativeShare(nil, 0.5); items != 0 || total != 0 {
		t.Fatalf("nil input: %d/%d", items, total)
	}
	if items, _ := CumulativeShare([]int{0, 0}, 0.5); items != 0 {
		t.Fatalf("all-zero input: %d", items)
	}
	if items, _ := CumulativeShare([]int{5}, -1); items != 0 {
		t.Fatalf("non-positive share: %d", items)
	}
	// Unsorted input must be handled (function sorts internally).
	if items, _ := CumulativeShare([]int{1, 100, 1}, 0.9); items != 1 {
		t.Fatalf("unsorted input: %d, want 1", items)
	}
}

// Property: CumulativeShare is monotone in share and bounded by len(counts).
func TestCumulativeShareMonotoneProperty(t *testing.T) {
	f := func(raw []uint16, s1, s2 uint8) bool {
		counts := make([]int, len(raw))
		for i, v := range raw {
			counts[i] = int(v)
		}
		sh1 := float64(s1%101) / 100
		sh2 := float64(s2%101) / 100
		if sh1 > sh2 {
			sh1, sh2 = sh2, sh1
		}
		i1, n1 := CumulativeShare(counts, sh1)
		i2, n2 := CumulativeShare(counts, sh2)
		return i1 <= i2 && i2 <= len(counts) && n1 == len(counts) && n2 == len(counts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
