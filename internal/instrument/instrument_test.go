package instrument

import (
	"strings"
	"testing"

	"saad/internal/logpoint"
)

const sampleSrc = `package server

import "log"

type DataXceiver struct{}

func (d *DataXceiver) Run(pkts [][]byte) {
	log.Printf("Receiving block blk_%d", 7)
	for _, pkt := range pkts {
		log.Printf("Receiving one packet for blk_%d", 7)
		if len(pkt) == 0 {
			log.Printf("Receiving empty packet for blk_%d", 7)
			continue
		}
		log.Printf("WriteTo blockfile of size %d", len(pkt))
	}
	log.Println("Closing down.")
}

func helper() {
	log.Print("helper running")
	other.Printf("not a log call")
}
`

const otherStub = `package server

var other = struct{ Printf func(string, ...any) }{}
`

func TestRunBuildsDictionary(t *testing.T) {
	res, err := Run([]File{{Name: "xceiver.go", Src: []byte(sampleSrc)}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Five log calls inside Run + one inside helper; other.Printf ignored.
	if len(res.Sites) != 6 {
		t.Fatalf("sites = %d: %+v", len(res.Sites), res.Sites)
	}
	if res.Dictionary.NumPoints() != 6 {
		t.Fatalf("dictionary points = %d", res.Dictionary.NumPoints())
	}
	// Stage names: methods use the receiver type; functions their name.
	if res.Sites[0].Stage != "DataXceiver" {
		t.Fatalf("stage = %q", res.Sites[0].Stage)
	}
	if res.Sites[5].Stage != "helper" {
		t.Fatalf("stage = %q", res.Sites[5].Stage)
	}
	// Templates keep only the static prefix.
	if res.Sites[0].Template != "Receiving block blk_" {
		t.Fatalf("template = %q", res.Sites[0].Template)
	}
	if res.Sites[4].Template != "Closing down." {
		t.Fatalf("template = %q", res.Sites[4].Template)
	}
	// Positions recorded.
	if res.Sites[0].File != "xceiver.go" || res.Sites[0].Line == 0 {
		t.Fatalf("position = %s:%d", res.Sites[0].File, res.Sites[0].Line)
	}
	// IDs are unique and dense from 1.
	for i, s := range res.Sites {
		if s.ID != logpoint.ID(i+1) {
			t.Fatalf("ids not dense: %+v", res.Sites)
		}
	}
	// No rewrite requested.
	if len(res.Rewritten) != 0 {
		t.Fatal("rewrote without HitPackage")
	}
}

func TestRunRewritesWithHitCalls(t *testing.T) {
	res, err := Run([]File{{Name: "xceiver.go", Src: []byte(sampleSrc)}}, Options{HitPackage: "saadlog"})
	if err != nil {
		t.Fatal(err)
	}
	out, ok := res.Rewritten["xceiver.go"]
	if !ok {
		t.Fatal("no rewritten source")
	}
	text := string(out)
	// One Hit per site, before the log call.
	if got := strings.Count(text, "saadlog.Hit("); got != 6 {
		t.Fatalf("Hit calls = %d\n%s", got, text)
	}
	// The Hit for the first site precedes its log statement.
	hitIdx := strings.Index(text, "saadlog.Hit(1)")
	logIdx := strings.Index(text, `log.Printf("Receiving block blk_`)
	if hitIdx == -1 || logIdx == -1 || hitIdx > logIdx {
		t.Fatalf("ordering wrong: hit@%d log@%d", hitIdx, logIdx)
	}
	// The empty-packet Hit lands inside the if block (before continue).
	if !strings.Contains(text, "saadlog.Hit(3)") {
		t.Fatalf("missing hit 3:\n%s", text)
	}
}

func TestRunCustomLoggerAndMethods(t *testing.T) {
	src := `package p

func f() {
	logger.Debugf("custom %d", 1)
	logger.Tracef("ignored")
}
`
	res, err := Run([]File{{Name: "p.go", Src: []byte(src)}}, Options{
		Logger:  "logger",
		Methods: []string{"Debugf"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sites) != 1 {
		t.Fatalf("sites = %+v", res.Sites)
	}
	if res.Sites[0].Level != logpoint.LevelDebug {
		t.Fatalf("level = %v", res.Sites[0].Level)
	}
	if res.Sites[0].Template != "custom" {
		t.Fatalf("template = %q", res.Sites[0].Template)
	}
}

func TestRunLevels(t *testing.T) {
	src := `package p

func f() {
	log.Debugf("d %d", 1)
	log.Infof("i %d", 1)
	log.Warnf("w %d", 1)
	log.Errorf("e %d", 1)
	log.Print("plain")
}
`
	res, err := Run([]File{{Name: "p.go", Src: []byte(src)}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []logpoint.Level{
		logpoint.LevelDebug, logpoint.LevelInfo, logpoint.LevelWarn,
		logpoint.LevelError, logpoint.LevelInfo,
	}
	for i, lv := range want {
		if res.Sites[i].Level != lv {
			t.Fatalf("site %d level = %v, want %v", i, res.Sites[i].Level, lv)
		}
	}
}

func TestRunParseError(t *testing.T) {
	if _, err := Run([]File{{Name: "bad.go", Src: []byte("not go")}}, Options{}); err == nil {
		t.Fatal("parse error not surfaced")
	}
}

func TestRunMultipleFilesShareDictionary(t *testing.T) {
	res, err := Run([]File{
		{Name: "a.go", Src: []byte("package p\n\nfunc a() { log.Print(\"from a\") }\n")},
		{Name: "b.go", Src: []byte("package p\n\nfunc b() { log.Print(\"from b\") }\n")},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sites) != 2 || res.Sites[0].ID == res.Sites[1].ID {
		t.Fatalf("sites = %+v", res.Sites)
	}
	if res.Dictionary.NumStages() != 2 {
		t.Fatalf("stages = %d", res.Dictionary.NumStages())
	}
}

func TestRewrittenSourceStillParses(t *testing.T) {
	res, err := Run([]File{{Name: "xceiver.go", Src: []byte(sampleSrc)}}, Options{HitPackage: "saadlog"})
	if err != nil {
		t.Fatal(err)
	}
	// Instrument the rewritten output again: it must parse, and the log
	// calls must still be found.
	res2, err := Run([]File{{Name: "xceiver.go", Src: res.Rewritten["xceiver.go"]}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Sites) != 6 {
		t.Fatalf("re-instrumented sites = %d", len(res2.Sites))
	}
}
