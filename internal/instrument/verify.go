// verify.go holds the verification half of the instrumentation pass: given
// sources that are already instrumented (every log statement preceded by a
// Hit(id) call, as the rewriter in this package emits them) and the
// committed log template dictionary, it detects the drift classes that
// silently corrupt SAAD signatures — duplicate or unknown log-point ids,
// templates edited without a new id, and log statements that lost their
// Hit. Both cmd/saad-instrument (-check and re-instrumentation guard) and
// the logpointcheck analyzer in internal/lint call this one implementation,
// so the build-time pass and the vet-time pass cannot disagree.
package instrument

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"

	"saad/internal/logpoint"
)

// ScanOptions configures ScanInstrumented. Zero values select the same
// defaults as Options.
type ScanOptions struct {
	// HitPackage is the identifier qualifying inserted Hit calls
	// (default "saadlog").
	HitPackage string
	// Logger and Methods identify log statements, as in Options.
	Logger  string
	Methods []string
}

func (o *ScanOptions) applyDefaults() {
	if o.HitPackage == "" {
		o.HitPackage = "saadlog"
	}
	base := Options{Logger: o.Logger, Methods: o.Methods}
	base.applyDefaults()
	o.Logger = base.Logger
	o.Methods = base.Methods
}

// HitSite is one <hitpkg>.Hit(id) call found in instrumented source.
type HitSite struct {
	ID  logpoint.ID
	Pos token.Position
}

// LogSite is one log statement found in instrumented source, paired with
// its immediately preceding Hit call (nil when the Hit is missing).
type LogSite struct {
	Pos      token.Position
	Level    logpoint.Level
	Template string
	Hit      *HitSite
}

// Scan is the outcome of scanning instrumented sources.
type Scan struct {
	// Hits lists every Hit call in source order.
	Hits []HitSite
	// Logs lists every log statement in source order.
	Logs []LogSite
	// Dangling lists Hit calls not immediately followed by a log
	// statement (the pairing invariant the rewriter establishes).
	Dangling []HitSite
}

// Problem is one verification finding.
type Problem struct {
	Pos     token.Position
	Message string
}

func (p Problem) String() string {
	if p.Pos.Filename == "" {
		return p.Message
	}
	return fmt.Sprintf("%s:%d: %s", p.Pos.Filename, p.Pos.Line, p.Message)
}

// ScanInstrumented walks already-parsed files collecting Hit calls and log
// statements, pairing each log statement with the Hit that precedes it in
// the same statement list — the exact shape the rewriter in this package
// emits.
func ScanInstrumented(fset *token.FileSet, files []*ast.File, opts ScanOptions) *Scan {
	opts.applyDefaults()
	methods := make(map[string]bool, len(opts.Methods))
	for _, m := range opts.Methods {
		methods[m] = true
	}
	s := &Scan{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch blk := n.(type) {
			case *ast.BlockStmt:
				s.scanList(fset, blk.List, opts, methods)
			case *ast.CaseClause:
				s.scanList(fset, blk.Body, opts, methods)
			case *ast.CommClause:
				s.scanList(fset, blk.Body, opts, methods)
			}
			return true
		})
	}
	return s
}

// scanList processes one statement list: runs of Hit statements pair with
// the log calls of the next statement, in order.
func (s *Scan) scanList(fset *token.FileSet, list []ast.Stmt, opts ScanOptions, methods map[string]bool) {
	var pending []int // indexes into s.Hits
	for _, stmt := range list {
		if id, ok := hitCallID(stmt, opts.HitPackage); ok {
			s.Hits = append(s.Hits, HitSite{ID: id, Pos: fset.Position(stmt.Pos())})
			pending = append(pending, len(s.Hits)-1)
			continue
		}
		logs := logCallsIn(stmt, opts.Logger, methods)
		for i, call := range logs {
			site := LogSite{
				Pos:      fset.Position(call.Pos()),
				Level:    levelOf(call.Fun.(*ast.SelectorExpr).Sel.Name),
				Template: templateOf(call),
			}
			if i < len(pending) {
				site.Hit = &s.Hits[pending[i]]
			}
			s.Logs = append(s.Logs, site)
		}
		for _, idx := range pending[min(len(logs), len(pending)):] {
			s.Dangling = append(s.Dangling, s.Hits[idx])
		}
		pending = pending[:0]
	}
	for _, idx := range pending {
		s.Dangling = append(s.Dangling, s.Hits[idx])
	}
}

// hitCallID matches `<hitpkg>.Hit(<int literal>)` as an expression
// statement and returns the literal id.
func hitCallID(stmt ast.Stmt, hitpkg string) (logpoint.ID, bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return 0, false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return 0, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Hit" {
		return 0, false
	}
	recv, ok := sel.X.(*ast.Ident)
	if !ok || recv.Name != hitpkg {
		return 0, false
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return 0, false
	}
	var id uint64
	if _, err := fmt.Sscanf(lit.Value, "%d", &id); err != nil || id > 0xFFFF {
		return 0, false
	}
	return logpoint.ID(id), true
}

// logCallsIn collects the log calls attributed to stmt at this nesting
// level, stopping at nested blocks exactly like the rewriter does.
func logCallsIn(stmt ast.Stmt, logger string, methods map[string]bool) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause, *ast.FuncLit:
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv, ok := sel.X.(*ast.Ident)
		if ok && recv.Name == logger && methods[sel.Sel.Name] {
			out = append(out, call)
		}
		return true
	})
	return out
}

// Verify checks the scan against the committed dictionary and returns
// every problem found, in source order:
//
//   - a log-point id used by two Hit calls (ids are unique per statement)
//   - a Hit id absent from the dictionary
//   - a template that drifted from the dictionary entry for its id
//   - a log statement with no preceding Hit
//   - a Hit not followed by its log statement
func (s *Scan) Verify(dict *logpoint.Dictionary) []Problem {
	var out []Problem
	firstUse := make(map[logpoint.ID]token.Position, len(s.Hits))
	for _, h := range s.Hits {
		if prev, dup := firstUse[h.ID]; dup {
			out = append(out, Problem{Pos: h.Pos, Message: fmt.Sprintf(
				"duplicate log-point id %d (already used at %s:%d)", h.ID, prev.Filename, prev.Line)})
			continue
		}
		firstUse[h.ID] = h.Pos
		if _, err := dict.Point(h.ID); err != nil {
			out = append(out, Problem{Pos: h.Pos, Message: fmt.Sprintf(
				"log-point id %d is not in the dictionary", h.ID)})
		}
	}
	for _, l := range s.Logs {
		if l.Hit == nil {
			out = append(out, Problem{Pos: l.Pos, Message: "log statement lacks a preceding Hit call"})
			continue
		}
		p, err := dict.Point(l.Hit.ID)
		if err != nil {
			continue // already reported as unknown id
		}
		if p.Template != l.Template {
			out = append(out, Problem{Pos: l.Pos, Message: fmt.Sprintf(
				"template drifted from dictionary for id %d: dictionary has %q, source has %q (changed statements need a new id)",
				l.Hit.ID, p.Template, l.Template)})
		}
	}
	for _, h := range s.Dangling {
		out = append(out, Problem{Pos: h.Pos, Message: fmt.Sprintf(
			"Hit(%d) is not immediately followed by its log statement", h.ID)})
	}
	sortProblems(out)
	return out
}

// DiffDictionaries compares a previously committed dictionary with a fresh
// re-instrumentation and reports every id whose template changed — the
// drift the paper's pre-assigned-id scheme forbids (a changed statement is
// a new log point, not a mutation of an old one). Position information
// comes from the new dictionary's source metadata.
func DiffDictionaries(old, fresh *logpoint.Dictionary) []Problem {
	var out []Problem
	for _, np := range fresh.Points() {
		op, err := old.Point(np.ID)
		if err != nil {
			continue // new id: fine
		}
		if op.Template != np.Template {
			out = append(out, Problem{
				Pos: token.Position{Filename: np.File, Line: np.Line},
				Message: fmt.Sprintf(
					"dictionary drift at id %d: committed template %q, source now %q (assign a new id instead of editing)",
					np.ID, op.Template, np.Template),
			})
		}
	}
	sortProblems(out)
	return out
}

func sortProblems(ps []Problem) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Pos.Filename != ps[j].Pos.Filename {
			return ps[i].Pos.Filename < ps[j].Pos.Filename
		}
		if ps[i].Pos.Line != ps[j].Pos.Line {
			return ps[i].Pos.Line < ps[j].Pos.Line
		}
		return ps[i].Message < ps[j].Message
	})
}
