package instrument

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"saad/internal/logpoint"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

// dictFor builds a dictionary whose points mirror the given templates in id
// order starting at 1, all under one stage.
func dictFor(t *testing.T, templates ...string) *logpoint.Dictionary {
	t.Helper()
	d := logpoint.NewDictionary()
	sid, err := d.RegisterStage("S", logpoint.ProducerConsumer)
	if err != nil {
		t.Fatal(err)
	}
	for _, tpl := range templates {
		if _, err := d.RegisterPoint(sid, logpoint.LevelInfo, tpl); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestScanPairsHitsWithLogs(t *testing.T) {
	fset, files := parseOne(t, `package p

import "log"

func f(n int) {
	saadlog.Hit(1)
	log.Printf("starting %d", n)
	for i := 0; i < n; i++ {
		saadlog.Hit(2)
		log.Println("loop body")
	}
	saadlog.Hit(3)
	log.Println("done")
}
`)
	s := ScanInstrumented(fset, files, ScanOptions{})
	if len(s.Hits) != 3 || len(s.Logs) != 3 || len(s.Dangling) != 0 {
		t.Fatalf("hits=%d logs=%d dangling=%d", len(s.Hits), len(s.Logs), len(s.Dangling))
	}
	// Pairing follows the rewriter's id assignment regardless of the order
	// statement lists are visited in (outer lists complete before nested).
	// templateOf trims from the first format verb, so "starting %d"
	// normalizes to "starting".
	wantID := map[string]logpoint.ID{"starting": 1, "loop body": 2, "done": 3}
	for _, l := range s.Logs {
		if l.Hit == nil || l.Hit.ID != wantID[l.Template] {
			t.Fatalf("log %q paired with %+v, want id %d", l.Template, l.Hit, wantID[l.Template])
		}
	}
	if probs := s.Verify(dictFor(t, "starting", "loop body", "done")); len(probs) != 0 {
		t.Fatalf("clean source produced problems: %v", probs)
	}
}

func TestVerifyFindsEveryDriftClass(t *testing.T) {
	fset, files := parseOne(t, `package p

import "log"

func f() {
	saadlog.Hit(1)
	log.Println("ok")
	saadlog.Hit(1)
	log.Println("duplicate id")
	saadlog.Hit(9)
	log.Println("unknown id")
	saadlog.Hit(2)
	log.Println("edited template")
	log.Println("orphan statement")
	saadlog.Hit(3)
	x := 0
	_ = x
}
`)
	s := ScanInstrumented(fset, files, ScanOptions{})
	probs := s.Verify(dictFor(t, "ok", "original template", "trailer"))
	var got []string
	for _, p := range probs {
		got = append(got, p.Message)
	}
	wants := []string{
		"duplicate log-point id 1",
		// The duplicate's statement also mismatches id 1's template, so it
		// additionally reports drift — both findings are real.
		`template drifted from dictionary for id 1: dictionary has "ok"`,
		"log-point id 9 is not in the dictionary",
		"template drifted from dictionary for id 2",
		"log statement lacks a preceding Hit call",
		"Hit(3) is not immediately followed by its log statement",
	}
	for _, w := range wants {
		found := false
		for _, g := range got {
			if strings.Contains(g, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing problem %q in %v", w, got)
		}
	}
	if len(probs) != len(wants) {
		t.Fatalf("problems = %d, want %d: %v", len(probs), len(wants), got)
	}
}

func TestScanRespectsCustomHitPackageAndLogger(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() {
	trace.Hit(1)
	logger.Infof("custom stack")
}
`)
	s := ScanInstrumented(fset, files, ScanOptions{
		HitPackage: "trace", Logger: "logger", Methods: []string{"Infof"},
	})
	if len(s.Hits) != 1 || len(s.Logs) != 1 || s.Logs[0].Hit == nil {
		t.Fatalf("hits=%d logs=%d", len(s.Hits), len(s.Logs))
	}
	// Default options must not match the custom identifiers.
	s = ScanInstrumented(fset, files, ScanOptions{})
	if len(s.Hits) != 0 || len(s.Logs) != 0 {
		t.Fatalf("defaults matched custom identifiers: hits=%d logs=%d", len(s.Hits), len(s.Logs))
	}
}

func TestScanCaseClauseLists(t *testing.T) {
	fset, files := parseOne(t, `package p

import "log"

func f(n int, ch chan int) {
	switch n {
	case 0:
		saadlog.Hit(1)
		log.Println("zero")
	}
	select {
	case <-ch:
		saadlog.Hit(2)
		log.Println("recv")
	default:
	}
}
`)
	s := ScanInstrumented(fset, files, ScanOptions{})
	if len(s.Hits) != 2 || len(s.Logs) != 2 {
		t.Fatalf("hits=%d logs=%d", len(s.Hits), len(s.Logs))
	}
	for i, l := range s.Logs {
		if l.Hit == nil {
			t.Fatalf("log %d unpaired", i)
		}
	}
}

func TestDiffDictionaries(t *testing.T) {
	old := dictFor(t, "alpha", "beta")
	fresh := dictFor(t, "alpha", "beta-edited", "gamma")
	probs := DiffDictionaries(old, fresh)
	if len(probs) != 1 {
		t.Fatalf("problems = %v, want exactly the id-2 drift", probs)
	}
	if !strings.Contains(probs[0].Message, "dictionary drift at id 2") {
		t.Fatalf("message = %q", probs[0].Message)
	}
	// New ids (gamma) are growth, not drift; identical dictionaries diff clean.
	if probs := DiffDictionaries(old, old); len(probs) != 0 {
		t.Fatalf("self-diff = %v", probs)
	}
}
