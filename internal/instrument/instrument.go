// Package instrument implements the static instrumentation pass of paper
// Section 4.1.1 for Go sources: it scans a package for calls to a logging
// library, assigns each call site a unique log-point id, builds the log
// template dictionary, and (optionally) rewrites the source to emit the
// log-point id to the task execution tracker before each log call.
//
// The paper performs the same one-time pass over Java sources with two
// small Ruby scripts (identifying stage beginnings at Runnable.run methods
// and rewriting 3000+ log statements in under a minute); cmd/saad-instrument
// wraps this package as the equivalent tool.
package instrument

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"sort"
	"strconv"
	"strings"

	"saad/internal/logpoint"
)

// Options configures a pass.
type Options struct {
	// Logger is the package or receiver identifier whose method calls are
	// log statements (e.g. "log", "logger", "slog"). Default "log".
	Logger string
	// Methods are the method names treated as log calls. Default
	// Print/Printf/Println plus leveled variants.
	Methods []string
	// HitPackage is the identifier of the package whose Hit function the
	// rewrite inserts before each log call (e.g. "saadlog" producing
	// `saadlog.Hit(42)`). Empty disables rewriting.
	HitPackage string
	// StageFromFunc derives the stage name from the enclosing function
	// (the paper instruments Runnable.run entry points; for Go we use the
	// enclosing function or method name). Default true.
	StageFromFunc bool
}

func (o *Options) applyDefaults() {
	if o.Logger == "" {
		o.Logger = "log"
	}
	if len(o.Methods) == 0 {
		o.Methods = []string{
			"Print", "Printf", "Println",
			"Debug", "Debugf", "Info", "Infof",
			"Warn", "Warnf", "Error", "Errorf",
		}
	}
	if !o.StageFromFunc {
		o.StageFromFunc = true
	}
}

// Site is one instrumented log statement.
type Site struct {
	ID       logpoint.ID
	Stage    string
	Level    logpoint.Level
	Template string
	File     string
	Line     int
}

// Result is the outcome of instrumenting one file set.
type Result struct {
	// Dictionary is the log template dictionary built by the pass.
	Dictionary *logpoint.Dictionary
	// Sites lists the instrumented statements in id order.
	Sites []Site
	// Rewritten maps file names to their rewritten source (only when
	// Options.HitPackage is set).
	Rewritten map[string][]byte
}

// File is one input source file.
type File struct {
	Name string
	Src  []byte
}

// Run instruments the given files.
func Run(files []File, opts Options) (*Result, error) {
	opts.applyDefaults()
	methodSet := make(map[string]bool, len(opts.Methods))
	for _, m := range opts.Methods {
		methodSet[m] = true
	}
	res := &Result{
		Dictionary: logpoint.NewDictionary(),
		Rewritten:  make(map[string][]byte),
	}
	for _, f := range files {
		if err := runFile(f, opts, methodSet, res); err != nil {
			return nil, err
		}
	}
	sort.Slice(res.Sites, func(i, j int) bool { return res.Sites[i].ID < res.Sites[j].ID })
	return res, nil
}

func runFile(f File, opts Options, methods map[string]bool, res *Result) error {
	fset := token.NewFileSet()
	parsed, err := parser.ParseFile(fset, f.Name, f.Src, parser.ParseComments)
	if err != nil {
		return fmt.Errorf("instrument: parse %s: %w", f.Name, err)
	}

	type hit struct {
		call  *ast.CallExpr
		stage string
	}
	var hits []hit

	// Walk declarations tracking the enclosing function for stage names.
	for _, decl := range parsed.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		stage := stageName(fn)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv, ok := sel.X.(*ast.Ident)
			if !ok || recv.Name != opts.Logger || !methods[sel.Sel.Name] {
				return true
			}
			hits = append(hits, hit{call: call, stage: stage})
			return true
		})
	}

	// Register sites (stable order: position in file).
	sort.Slice(hits, func(i, j int) bool { return hits[i].call.Pos() < hits[j].call.Pos() })
	ids := make(map[*ast.CallExpr]logpoint.ID, len(hits))
	for _, h := range hits {
		stageID, err := res.Dictionary.RegisterStage(h.stage, logpoint.ProducerConsumer)
		if err != nil {
			return fmt.Errorf("instrument: register stage %s: %w", h.stage, err)
		}
		sel := h.call.Fun.(*ast.SelectorExpr)
		level := levelOf(sel.Sel.Name)
		tpl := templateOf(h.call)
		pos := fset.Position(h.call.Pos())
		id, err := res.Dictionary.RegisterPointAt(stageID, level, tpl, pos.Filename, pos.Line)
		if err != nil {
			return fmt.Errorf("instrument: register point %s:%d: %w", pos.Filename, pos.Line, err)
		}
		ids[h.call] = id
		res.Sites = append(res.Sites, Site{
			ID: id, Stage: h.stage, Level: level, Template: tpl,
			File: pos.Filename, Line: pos.Line,
		})
	}

	if opts.HitPackage == "" || len(hits) == 0 {
		return nil
	}

	// Rewrite: insert `<HitPackage>.Hit(<id>)` immediately before each
	// statement containing a log call.
	rewrite := func(list []ast.Stmt) []ast.Stmt {
		out := make([]ast.Stmt, 0, len(list))
		for _, stmt := range list {
			// Attribute only calls at this nesting level: stop at nested
			// blocks, which get their own rewrite pass.
			var found []logpoint.ID
			ast.Inspect(stmt, func(n ast.Node) bool {
				switch n.(type) {
				case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause, *ast.FuncLit:
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := ids[call]; ok {
						found = append(found, id)
					}
				}
				return true
			})
			for _, id := range found {
				out = append(out, &ast.ExprStmt{X: &ast.CallExpr{
					Fun: &ast.SelectorExpr{
						X:   ast.NewIdent(opts.HitPackage),
						Sel: ast.NewIdent("Hit"),
					},
					Args: []ast.Expr{&ast.BasicLit{Kind: token.INT, Value: strconv.Itoa(int(id))}},
				}})
			}
			out = append(out, stmt)
		}
		return out
	}
	ast.Inspect(parsed, func(n ast.Node) bool {
		switch blk := n.(type) {
		case *ast.BlockStmt:
			blk.List = rewrite(blk.List)
		case *ast.CaseClause:
			blk.Body = rewrite(blk.Body)
		case *ast.CommClause:
			blk.Body = rewrite(blk.Body)
		}
		return true
	})

	var buf bytes.Buffer
	if err := format.Node(&buf, fset, parsed); err != nil {
		return fmt.Errorf("instrument: format %s: %w", f.Name, err)
	}
	res.Rewritten[f.Name] = buf.Bytes()
	return nil
}

// stageName derives a stage name from the enclosing function: the receiver
// type for methods (the paper's stages are Runnable classes), otherwise the
// function name.
func stageName(fn *ast.FuncDecl) string {
	if fn.Recv != nil && len(fn.Recv.List) == 1 {
		switch t := fn.Recv.List[0].Type.(type) {
		case *ast.StarExpr:
			if id, ok := t.X.(*ast.Ident); ok {
				return id.Name
			}
		case *ast.Ident:
			return t.Name
		}
	}
	return fn.Name.Name
}

// levelOf maps a log method name to a verbosity level.
func levelOf(method string) logpoint.Level {
	switch {
	case strings.HasPrefix(method, "Debug"):
		return logpoint.LevelDebug
	case strings.HasPrefix(method, "Warn"):
		return logpoint.LevelWarn
	case strings.HasPrefix(method, "Error"):
		return logpoint.LevelError
	case strings.HasPrefix(method, "Info"):
		return logpoint.LevelInfo
	default:
		// Plain Print* carries no level; the paper treats un-leveled
		// statements as INFO.
		return logpoint.LevelInfo
	}
}

// templateOf extracts the static portion of the log statement: the first
// string-literal argument (the format string), with verbs trimmed off the
// tail — matching how the paper's dictionary stores "the static portions of
// the log statements".
func templateOf(call *ast.CallExpr) string {
	for _, arg := range call.Args {
		lit, ok := arg.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			continue
		}
		s, err := strconv.Unquote(lit.Value)
		if err != nil {
			continue
		}
		// Trim from the first format verb onward.
		if i := strings.IndexByte(s, '%'); i >= 0 {
			s = strings.TrimRight(s[:i], " :")
		}
		return s
	}
	return "(dynamic message)"
}
