package synopsis

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"saad/internal/logpoint"
	"saad/internal/trace"
)

// TestEncodedSizeMatchesAppendRecord pins the arithmetic EncodedSize to the
// encoder's actual output, traced and untraced, across varied shapes.
func TestEncodedSizeMatchesAppendRecord(t *testing.T) {
	for i := 0; i < 500; i++ {
		s := sampleSynopsis(i)
		if i%3 == 0 {
			s.Trace = &trace.Span{Emit: int64(i) * 1e9, Send: int64(i)*1e9 + 5}
		}
		if got, want := EncodedSize(s), len(AppendRecord(nil, s)); got != want {
			t.Fatalf("synopsis %d: EncodedSize=%d, len(AppendRecord)=%d", i, got, want)
		}
	}
	empty := &Synopsis{Start: time.UnixMicro(0).UTC()}
	if got, want := EncodedSize(empty), len(AppendRecord(nil, empty)); got != want {
		t.Fatalf("empty synopsis: EncodedSize=%d, len(AppendRecord)=%d", got, want)
	}
}

func TestUvarintLen(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 16383, 16384, 1<<32 - 1, 1 << 32, 1<<64 - 1} {
		var buf [10]byte
		if got, want := uvarintLen(v), putUvarintLen(buf[:], v); got != want {
			t.Fatalf("uvarintLen(%d)=%d, PutUvarint wrote %d", v, got, want)
		}
	}
}

func putUvarintLen(buf []byte, v uint64) int {
	n := 0
	for v >= 0x80 {
		buf[n] = byte(v) | 0x80
		v >>= 7
		n++
	}
	buf[n] = byte(v)
	return n + 1
}

// roundTripV2 encodes batches with enc and decodes everything back.
func roundTripV2(t *testing.T, enc *BatchEncoder, batches [][]*Synopsis) []*Synopsis {
	t.Helper()
	var wire []byte
	for _, b := range batches {
		wire = enc.AppendFrames(wire, b)
	}
	dec := NewBatchDecoder(bufio.NewReader(bytes.NewReader(wire)))
	var out []*Synopsis
	for {
		var s Synopsis
		err := dec.Decode(&s)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("decode record %d: %v", len(out), err)
		}
		out = append(out, s.Clone())
	}
	return out
}

func TestBatchRoundTrip(t *testing.T) {
	enc := NewBatchEncoder()
	var want []*Synopsis
	var batches [][]*Synopsis
	for b := 0; b < 7; b++ {
		var batch []*Synopsis
		for i := 0; i < 50+b; i++ {
			s := sampleSynopsis(b*100 + i)
			if (b+i)%5 == 0 {
				s.Trace = &trace.Span{Emit: 100 + int64(i), Send: 200 + int64(i)}
			}
			batch = append(batch, s)
			want = append(want, s)
		}
		batches = append(batches, batch)
	}
	got := roundTripV2(t, enc, batches)
	if len(got) != len(want) {
		t.Fatalf("decoded %d synopses, want %d", len(got), len(want))
	}
	for i := range want {
		assertEqualSynopsis(t, i, got[i], want[i])
	}
	if enc.InternedRefs() == 0 {
		t.Fatal("expected interned header refs after repeated (host,stage) groups")
	}
}

func assertEqualSynopsis(t *testing.T, i int, got, want *Synopsis) {
	t.Helper()
	if got.Stage != want.Stage || got.Host != want.Host || got.TaskID != want.TaskID {
		t.Fatalf("synopsis %d header mismatch: got %v want %v", i, got, want)
	}
	if !got.Start.Equal(want.Start) || got.Duration != want.Duration {
		t.Fatalf("synopsis %d time mismatch: got %v/%v want %v/%v", i, got.Start, got.Duration, want.Start, want.Duration)
	}
	if len(got.Points) != len(want.Points) {
		t.Fatalf("synopsis %d point count mismatch: got %d want %d", i, len(got.Points), len(want.Points))
	}
	for j := range want.Points {
		if got.Points[j] != want.Points[j] {
			t.Fatalf("synopsis %d point %d mismatch: got %v want %v", i, j, got.Points[j], want.Points[j])
		}
	}
	if (got.Trace == nil) != (want.Trace == nil) {
		t.Fatalf("synopsis %d trace presence mismatch", i)
	}
	if want.Trace != nil && (got.Trace.Emit != want.Trace.Emit || got.Trace.Send != want.Trace.Send) {
		t.Fatalf("synopsis %d trace stamps mismatch: got %+v want %+v", i, got.Trace, want.Trace)
	}
}

// TestBatchInterning verifies repeated group headers shrink to one uvarint:
// the second batch of the same group must be strictly smaller than the
// first, and a Reset must re-emit the inline definition.
func TestBatchInterning(t *testing.T) {
	mk := func(n int) []*Synopsis {
		out := make([]*Synopsis, n)
		for i := range out {
			out[i] = &Synopsis{
				Stage: 7, Host: 3, TaskID: uint64(i),
				Start:  time.UnixMicro(1000).UTC(),
				Points: []PointCount{{Point: 5, Count: 1}},
			}
		}
		return out
	}
	enc := NewBatchEncoder()
	first := len(enc.AppendFrames(nil, mk(10)))
	second := len(enc.AppendFrames(nil, mk(10)))
	if second >= first {
		t.Fatalf("interned batch (%dB) not smaller than defining batch (%dB)", second, first)
	}
	enc.Reset()
	third := len(enc.AppendFrames(nil, mk(10)))
	if third != first {
		t.Fatalf("post-Reset batch %dB, want the defining size %dB again", third, first)
	}
}

// TestBatchDecoderRejectsStaleRef proves the decoder refuses an intern ref
// it never saw a definition for — the reconnect/reset safety property.
func TestBatchDecoderRejectsStaleRef(t *testing.T) {
	enc := NewBatchEncoder()
	warm := enc.AppendFrames(nil, []*Synopsis{sampleSynopsis(1)})
	// Same encoder, table now warm: this frame uses a bare ref.
	refOnly := enc.AppendFrames(nil, []*Synopsis{sampleSynopsis(1)})
	_ = warm
	dec := NewBatchDecoder(bufio.NewReader(bytes.NewReader(refOnly)))
	var s Synopsis
	if err := dec.Decode(&s); err == nil {
		t.Fatal("decoder accepted an intern ref with an empty table (simulated reconnect without reset)")
	}
}

func TestBatchFrameSplitting(t *testing.T) {
	enc := NewBatchEncoder()
	batch := make([]*Synopsis, MaxBatchRecords+5)
	for i := range batch {
		batch[i] = sampleSynopsis(i)
	}
	wire := enc.AppendFrames(nil, batch)
	dec := NewBatchDecoder(bufio.NewReader(bytes.NewReader(wire)))
	frames := 0
	dec.SetFrameHook(func(int) { frames++ })
	n := 0
	for {
		var s Synopsis
		err := dec.Decode(&s)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != len(batch) {
		t.Fatalf("decoded %d records, want %d", n, len(batch))
	}
	if frames < 2 {
		t.Fatalf("batch of %d records produced %d frames, want a split", len(batch), frames)
	}
}

func TestBatchDecoderCorruptInputs(t *testing.T) {
	enc := NewBatchEncoder()
	good := enc.AppendFrames(nil, []*Synopsis{sampleSynopsis(3), sampleSynopsis(4)})

	// Every truncation of a valid stream must error (or EOF at offset 0).
	for cut := 0; cut < len(good); cut++ {
		dec := NewBatchDecoder(bufio.NewReader(bytes.NewReader(good[:cut])))
		var s Synopsis
		var err error
		for err == nil {
			err = dec.Decode(&s)
		}
		if errors.Is(err, io.EOF) && cut != 0 {
			t.Fatalf("truncation at %d/%d decoded as clean EOF", cut, len(good))
		}
	}

	// An oversized frame length must be rejected before allocation.
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0x7f} // ~34 GB
	dec := NewBatchDecoder(bufio.NewReader(bytes.NewReader(huge)))
	var s Synopsis
	if err := dec.Decode(&s); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: got %v, want ErrFrameTooLarge", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	hello := AppendHello(nil, MaxProtocolVersion)
	br := bufio.NewReader(bytes.NewReader(hello))
	maxVer, ok, err := PeekHello(br)
	if err != nil || !ok || maxVer != MaxProtocolVersion {
		t.Fatalf("PeekHello = (%d, %v, %v), want (%d, true, nil)", maxVer, ok, err, MaxProtocolVersion)
	}
	if _, err := br.ReadByte(); !errors.Is(err, io.EOF) {
		t.Fatalf("hello not fully consumed: %v", err)
	}

	ack := AppendHelloAck(nil, ProtocolV2)
	ver, err := ReadHelloAck(bufio.NewReader(bytes.NewReader(ack)))
	if err != nil || ver != ProtocolV2 {
		t.Fatalf("ReadHelloAck = (%d, %v), want (%d, nil)", ver, err, ProtocolV2)
	}
}

// TestPeekHelloPassesV1 proves hello detection never consumes (or
// misclassifies) a legacy stream, including records with multi-byte length
// prefixes.
func TestPeekHelloPassesV1(t *testing.T) {
	big := sampleSynopsis(9)
	for i := 0; i < 40; i++ { // push the record length past 128 bytes
		big.Points = append(big.Points, PointCount{Point: logpoint.ID(300 + i*3), Count: 2})
	}
	big.Normalize()
	for _, s := range []*Synopsis{sampleSynopsis(1), big} {
		wire := AppendRecord(nil, s)
		br := bufio.NewReader(bytes.NewReader(wire))
		_, ok, err := PeekHello(br)
		if err != nil || ok {
			t.Fatalf("PeekHello on v1 stream = (%v, %v), want (false, nil)", ok, err)
		}
		dec := NewDecoder(br)
		var got Synopsis
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("v1 decode after peek: %v", err)
		}
		assertEqualSynopsis(t, 0, &got, s)
	}
}

// TestHelloRejectedByV1Decoder pins the downgrade signal: a legacy server
// reading a hello must fail with ErrRecordTooLarge, not hang or misparse.
func TestHelloRejectedByV1Decoder(t *testing.T) {
	hello := AppendHello(nil, MaxProtocolVersion)
	dec := NewDecoder(bytes.NewReader(hello))
	var s Synopsis
	if err := dec.Decode(&s); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("v1 decoder on hello: got %v, want ErrRecordTooLarge", err)
	}
}

func TestPool(t *testing.T) {
	p := NewPool(2)
	s := p.Get()
	s.Stage, s.Host, s.TaskID = 3, 4, 5
	s.Points = append(s.Points, PointCount{Point: 9, Count: 2})
	s.Trace = &trace.Span{}
	p.Put(s)
	got := p.Get()
	if got != s {
		t.Fatal("pool did not recycle the released synopsis")
	}
	if got.Stage != 0 || got.Host != 0 || got.TaskID != 0 || got.Trace != nil || len(got.Points) != 0 {
		t.Fatalf("recycled synopsis not reset: %+v", got)
	}
	if cap(got.Points) == 0 {
		t.Fatal("recycled synopsis lost its point capacity")
	}
	// nil pool degrades to allocation, never panics.
	var np *Pool
	if np.Get() == nil {
		t.Fatal("nil pool Get returned nil")
	}
	np.Put(&Synopsis{})
}
