// Package synopsis defines the task execution synopsis — the few-tens-of-
// bytes record the tracker emits when a task terminates (paper Section 3.2.2
// and 4.1) — together with its compact binary codec and the task signature
// derivation used by the analyzer.
package synopsis

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"saad/internal/logpoint"
	"saad/internal/trace"
)

// PointCount records how many times a task encountered one log point.
type PointCount struct {
	Point logpoint.ID
	Count uint32
}

// Synopsis summarizes one task execution. It mirrors the paper's struct:
//
//	struct synopsis{
//	  byte sid; int uid; int ts; int duration;
//	  struct { short int lpid; int count; } log_points[];
//	}
//
// extended with the host id used to tag synopses with semantic information
// before streaming (Section 3.1).
type Synopsis struct {
	// Stage is the stage this task is an instance of.
	Stage logpoint.StageID
	// Host identifies the cluster node the task ran on.
	Host uint16
	// TaskID is unique per task within a host.
	TaskID uint64
	// Start is the task start time.
	Start time.Time
	// Duration is the time between the task start and the last log point it
	// encountered (the paper's duration feature, Section 3.3.1).
	Duration time.Duration
	// Points lists the distinct log points encountered with their visit
	// frequencies, sorted by point id.
	Points []PointCount
	// Trace is the sampled pipeline span riding with this synopsis, nil for
	// the (overwhelmingly common) unsampled case. The codec carries it as a
	// trailing frame extension old decoders skip, so tracing peers
	// interoperate with untraced ones.
	Trace *trace.Span
	// RingEpoch is the sender's view of the federation ring topology when
	// it routed this synopsis, 0 when the sender is not federation-aware.
	// A receiving peer whose ring disagrees forwards the record to the
	// current owner instead of dropping it. Carried as a trailing frame
	// extension, so non-federated peers interoperate unchanged.
	RingEpoch uint64
}

// Clone returns a deep copy of the synopsis data. The Trace span pointer is
// shared, not copied: a span follows one task's journey and successive
// pipeline hops stamp the same span.
func (s *Synopsis) Clone() *Synopsis {
	c := *s
	c.Points = make([]PointCount, len(s.Points))
	copy(c.Points, s.Points)
	return &c
}

// Normalize sorts Points by id and merges duplicates, establishing the
// canonical form the codec and Signature rely on.
func (s *Synopsis) Normalize() {
	if len(s.Points) < 2 {
		return
	}
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].Point < s.Points[j].Point })
	out := s.Points[:1]
	for _, pc := range s.Points[1:] {
		if last := &out[len(out)-1]; last.Point == pc.Point {
			last.Count += pc.Count
		} else {
			out = append(out, pc)
		}
	}
	s.Points = out
}

// Signature returns the task signature: the set of distinct log points
// encountered, independent of order and frequency (Section 3.3.1). The
// synopsis must be in canonical form (Normalize).
func (s *Synopsis) Signature() Signature {
	ids := make([]logpoint.ID, len(s.Points))
	for i, pc := range s.Points {
		ids[i] = pc.Point
	}
	return Compute(ids)
}

// TotalHits returns the total number of log point encounters.
func (s *Synopsis) TotalHits() int {
	var n uint64
	for _, pc := range s.Points {
		n += uint64(pc.Count)
	}
	return int(n)
}

// String implements fmt.Stringer for diagnostics.
func (s *Synopsis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "synopsis{stage=%d host=%d task=%d dur=%s points=[", s.Stage, s.Host, s.TaskID, s.Duration)
	for i, pc := range s.Points {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d×%d", pc.Point, pc.Count)
	}
	b.WriteString("]}")
	return b.String()
}

// Signature is the canonical encoding of a set of log points: the sorted
// distinct ids packed two bytes each into a string, so it is directly usable
// as a map key. The empty signature (task hit no log points) is valid.
type Signature string

// Compute builds a Signature from ids (sorted and deduplicated internally;
// the input slice is not modified).
func Compute(ids []logpoint.ID) Signature {
	if len(ids) == 0 {
		return ""
	}
	sorted := make([]logpoint.ID, len(ids))
	copy(sorted, ids)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	buf := make([]byte, 0, 2*len(sorted))
	var prev logpoint.ID
	for i, id := range sorted {
		if i > 0 && id == prev {
			continue
		}
		buf = append(buf, byte(id>>8), byte(id))
		prev = id
	}
	return Signature(buf)
}

// Points decodes the signature back into its sorted distinct ids.
func (s Signature) Points() []logpoint.ID {
	if len(s)%2 != 0 {
		return nil
	}
	out := make([]logpoint.ID, 0, len(s)/2)
	for i := 0; i+1 < len(s); i += 2 {
		out = append(out, logpoint.ID(s[i])<<8|logpoint.ID(s[i+1]))
	}
	return out
}

// Len returns the number of distinct log points in the signature.
func (s Signature) Len() int { return len(s) / 2 }

// Contains reports whether the signature includes id.
func (s Signature) Contains(id logpoint.ID) bool {
	pts := s.Points()
	i := sort.Search(len(pts), func(i int) bool { return pts[i] >= id })
	return i < len(pts) && pts[i] == id
}

// String implements fmt.Stringer with a readable form like "{3,7,12}".
func (s Signature) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, id := range s.Points() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", id)
	}
	b.WriteByte('}')
	return b.String()
}
