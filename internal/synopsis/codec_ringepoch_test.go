package synopsis

import (
	"bufio"
	"bytes"
	"testing"

	"saad/internal/trace"
)

// TestCodecRingEpochRoundTripV1 proves the ring-epoch extension survives a
// v1 encode/decode and that decoding a plain record into a reused struct
// clears a previous record's epoch.
func TestCodecRingEpochRoundTripV1(t *testing.T) {
	s := traceTestSyn()
	s.RingEpoch = 42

	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.Encode(s); err != nil {
		t.Fatal(err)
	}
	plain := traceTestSyn()
	plain.TaskID = 78
	if err := enc.Encode(plain); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}

	dec := NewDecoder(&buf)
	var got Synopsis
	if err := dec.Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.RingEpoch != 42 {
		t.Fatalf("ring epoch = %d, want 42", got.RingEpoch)
	}
	if err := dec.Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.RingEpoch != 0 {
		t.Fatalf("epoch from a previous record leaked: %d", got.RingEpoch)
	}
}

// TestCodecRingEpochRoundTripV2 covers the batched framing, including a
// record carrying both the trace and the ring-epoch extensions.
func TestCodecRingEpochRoundTripV2(t *testing.T) {
	a := traceTestSyn()
	a.RingEpoch = 7
	a.Trace = &trace.Span{Emit: 11, Send: 12}
	b := traceTestSyn()
	b.TaskID = 78
	c := traceTestSyn()
	c.TaskID = 79
	c.RingEpoch = 9

	frames := NewBatchEncoder().AppendFrames(nil, []*Synopsis{a, b, c})
	dec := NewBatchDecoder(bufio.NewReader(bytes.NewReader(frames)))
	var got Synopsis
	if err := dec.Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.RingEpoch != 7 {
		t.Fatalf("first record epoch = %d, want 7", got.RingEpoch)
	}
	if got.Trace == nil || got.Trace.Emit != 11 || got.Trace.Send != 12 {
		t.Fatalf("trace extension lost beside ring epoch: %+v", got.Trace)
	}
	if err := dec.Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.RingEpoch != 0 {
		t.Fatalf("second record epoch = %d, want 0", got.RingEpoch)
	}
	if err := dec.Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.RingEpoch != 9 || got.TaskID != 79 {
		t.Fatalf("third record = task %d epoch %d, want 79/9", got.TaskID, got.RingEpoch)
	}
}

// TestCodecRingEpochCostsNothingWhenUnset pins that a record without a ring
// epoch encodes to exactly the pre-federation bytes in both framings.
func TestCodecRingEpochCostsNothingWhenUnset(t *testing.T) {
	s := traceTestSyn()
	plain := len(AppendRecord(nil, s))
	s.RingEpoch = 3
	stamped := len(AppendRecord(nil, s))
	if stamped <= plain {
		t.Fatalf("stamped record (%dB) should exceed plain (%dB)", stamped, plain)
	}
	if got := EncodedSize(s); got != stamped {
		t.Fatalf("EncodedSize = %d, want %d", got, stamped)
	}
	s.RingEpoch = 0
	if again := len(AppendRecord(nil, s)); again != plain {
		t.Fatalf("unstamped record grew from %dB to %dB", plain, again)
	}

	v2plain := len(NewBatchEncoder().AppendFrames(nil, []*Synopsis{s}))
	s.RingEpoch = 3
	v2stamped := len(NewBatchEncoder().AppendFrames(nil, []*Synopsis{s}))
	if v2stamped <= v2plain {
		t.Fatalf("stamped v2 frame (%dB) should exceed plain (%dB)", v2stamped, v2plain)
	}
}
