package synopsis

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"saad/internal/logpoint"
)

func TestNormalizeSortsAndMerges(t *testing.T) {
	s := &Synopsis{Points: []PointCount{{7, 1}, {3, 2}, {7, 4}, {1, 1}}}
	s.Normalize()
	want := []PointCount{{1, 1}, {3, 2}, {7, 5}}
	if len(s.Points) != len(want) {
		t.Fatalf("points = %v", s.Points)
	}
	for i := range want {
		if s.Points[i] != want[i] {
			t.Fatalf("points = %v, want %v", s.Points, want)
		}
	}
}

func TestNormalizeSmall(t *testing.T) {
	s := &Synopsis{}
	s.Normalize()
	if len(s.Points) != 0 {
		t.Fatal("empty changed")
	}
	s = &Synopsis{Points: []PointCount{{5, 2}}}
	s.Normalize()
	if len(s.Points) != 1 || s.Points[0] != (PointCount{5, 2}) {
		t.Fatalf("single = %v", s.Points)
	}
}

func TestSignatureIgnoresFrequencyAndOrder(t *testing.T) {
	a := &Synopsis{Points: []PointCount{{1, 1}, {2, 9}, {4, 1}}}
	b := &Synopsis{Points: []PointCount{{4, 3}, {1, 2}, {2, 1}}}
	a.Normalize()
	b.Normalize()
	if a.Signature() != b.Signature() {
		t.Fatalf("signatures differ: %v vs %v", a.Signature(), b.Signature())
	}
	c := &Synopsis{Points: []PointCount{{1, 1}, {2, 1}, {3, 1}, {4, 1}}}
	c.Normalize()
	if a.Signature() == c.Signature() {
		t.Fatal("distinct point sets collided")
	}
}

func TestSignatureStringAndPoints(t *testing.T) {
	sig := Compute([]logpoint.ID{300, 5, 5, 12})
	if got := sig.String(); got != "{5,12,300}" {
		t.Fatalf("String = %q", got)
	}
	if got := sig.Len(); got != 3 {
		t.Fatalf("Len = %d", got)
	}
	pts := sig.Points()
	if len(pts) != 3 || pts[0] != 5 || pts[1] != 12 || pts[2] != 300 {
		t.Fatalf("Points = %v", pts)
	}
	for _, id := range []logpoint.ID{5, 12, 300} {
		if !sig.Contains(id) {
			t.Fatalf("Contains(%d) = false", id)
		}
	}
	if sig.Contains(6) || sig.Contains(0) {
		t.Fatal("Contains matched absent id")
	}
	empty := Compute(nil)
	if empty != "" || empty.Len() != 0 || empty.String() != "{}" {
		t.Fatalf("empty signature misbehaves: %q %d %q", string(empty), empty.Len(), empty.String())
	}
}

// Property: Compute is invariant under permutation and duplication, and
// Points round-trips the sorted distinct input.
func TestSignatureCanonicalProperty(t *testing.T) {
	f := func(raw []uint16, dupIdx uint8) bool {
		ids := make([]logpoint.ID, len(raw))
		for i, v := range raw {
			ids[i] = logpoint.ID(v)
		}
		sig1 := Compute(ids)
		// Reverse and duplicate an element.
		rev := make([]logpoint.ID, 0, len(ids)+1)
		for i := len(ids) - 1; i >= 0; i-- {
			rev = append(rev, ids[i])
		}
		if len(ids) > 0 {
			rev = append(rev, ids[int(dupIdx)%len(ids)])
		}
		sig2 := Compute(rev)
		if sig1 != sig2 {
			return false
		}
		pts := sig1.Points()
		for i := 1; i < len(pts); i++ {
			if pts[i] <= pts[i-1] {
				return false
			}
		}
		return Compute(pts) == sig1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := &Synopsis{Stage: 2, TaskID: 7, Points: []PointCount{{1, 1}}}
	c := s.Clone()
	c.Points[0].Count = 99
	if s.Points[0].Count != 1 {
		t.Fatal("clone shares Points")
	}
}

func TestTotalHitsAndString(t *testing.T) {
	s := &Synopsis{Stage: 1, Host: 2, TaskID: 3, Duration: time.Millisecond,
		Points: []PointCount{{1, 2}, {4, 3}}}
	if got := s.TotalHits(); got != 5 {
		t.Fatalf("TotalHits = %d", got)
	}
	str := s.String()
	for _, want := range []string{"stage=1", "host=2", "task=3", "1×2", "4×3"} {
		if !strings.Contains(str, want) {
			t.Fatalf("String() = %q missing %q", str, want)
		}
	}
}
