package synopsis

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"

	"saad/internal/logpoint"
)

func sampleSynopsis(i int) *Synopsis {
	s := &Synopsis{
		Stage:    logpoint.StageID(i%40 + 1),
		Host:     uint16(i % 4),
		TaskID:   uint64(i),
		Start:    time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Millisecond),
		Duration: time.Duration(i%100+1) * 37 * time.Microsecond,
		Points: []PointCount{
			{Point: logpoint.ID(i%7 + 1), Count: uint32(i%3 + 1)},
			{Point: logpoint.ID(i%7 + 10), Count: 1},
			{Point: logpoint.ID(i%7 + 200), Count: uint32(i%50 + 1)},
		},
	}
	s.Normalize()
	return s
}

func TestCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	const n = 1000
	for i := 0; i < n; i++ {
		if err := enc.Encode(sampleSynopsis(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if enc.BytesWritten() != int64(buf.Len()) {
		t.Fatalf("BytesWritten = %d, buffer has %d", enc.BytesWritten(), buf.Len())
	}

	dec := NewDecoder(&buf)
	var got Synopsis
	for i := 0; i < n; i++ {
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		want := sampleSynopsis(i)
		if got.Stage != want.Stage || got.Host != want.Host || got.TaskID != want.TaskID {
			t.Fatalf("record %d header = %+v, want %+v", i, got, want)
		}
		if !got.Start.Equal(want.Start) {
			t.Fatalf("record %d start = %v, want %v", i, got.Start, want.Start)
		}
		if got.Duration != want.Duration {
			t.Fatalf("record %d duration = %v, want %v", i, got.Duration, want.Duration)
		}
		if len(got.Points) != len(want.Points) {
			t.Fatalf("record %d points = %v", i, got.Points)
		}
		for j := range want.Points {
			if got.Points[j] != want.Points[j] {
				t.Fatalf("record %d point %d = %v, want %v", i, j, got.Points[j], want.Points[j])
			}
		}
	}
	if err := dec.Decode(&got); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestCodecEmptyPoints(t *testing.T) {
	s := &Synopsis{Stage: 1, TaskID: 9, Start: time.UnixMicro(12345).UTC()}
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.Encode(s); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	var got Synopsis
	got.Points = []PointCount{{1, 1}} // must be reset by decode
	if err := NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != 0 {
		t.Fatalf("points = %v, want empty", got.Points)
	}
}

func TestCodecCompactness(t *testing.T) {
	// A typical synopsis (5 log points) must stay within a few tens of
	// bytes — the property Figure 8's volume reduction rests on.
	s := &Synopsis{
		Stage: 12, Host: 3, TaskID: 123456,
		Start:    time.Date(2026, 1, 1, 12, 0, 0, 0, time.UTC),
		Duration: 18 * time.Millisecond,
		Points:   []PointCount{{11, 1}, {12, 25}, {13, 24}, {14, 25}, {15, 1}},
	}
	size := EncodedSize(s)
	if size > 48 {
		t.Fatalf("encoded size = %d bytes, want <= 48", size)
	}
	if size < 10 {
		t.Fatalf("encoded size = %d bytes, implausibly small", size)
	}
}

func TestDecodeTruncated(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.Encode(sampleSynopsis(1)); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		dec := NewDecoder(bytes.NewReader(full[:cut]))
		var s Synopsis
		if err := dec.Decode(&s); err == nil {
			t.Fatalf("truncation at %d/%d decoded successfully", cut, len(full))
		}
	}
}

func TestDecodeOversizedRecordRejected(t *testing.T) {
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, maxRecordSize+1)
	dec := NewDecoder(bytes.NewReader(hdr))
	var s Synopsis
	if err := dec.Decode(&s); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("err = %v, want ErrRecordTooLarge", err)
	}
}

func TestDecodeBogusPointCount(t *testing.T) {
	// Craft a body claiming more points than bytes remain.
	var body []byte
	for i := 0; i < 5; i++ { // stage, host, task, start, duration
		body = binary.AppendUvarint(body, 1)
	}
	body = binary.AppendUvarint(body, 1<<30) // absurd point count
	var rec []byte
	rec = binary.AppendUvarint(rec, uint64(len(body)))
	rec = append(rec, body...)
	var s Synopsis
	if err := NewDecoder(bytes.NewReader(rec)).Decode(&s); err == nil {
		t.Fatal("bogus point count accepted")
	}
}

// Property: encode/decode round-trips arbitrary normalized synopses.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(stage uint16, host uint16, task uint64, startUs uint32, durUs uint32, rawPts []uint16, counts []uint8) bool {
		s := &Synopsis{
			Stage:    logpoint.StageID(stage),
			Host:     host,
			TaskID:   task,
			Start:    time.UnixMicro(int64(startUs)).UTC(),
			Duration: time.Duration(durUs) * time.Microsecond,
		}
		for i, p := range rawPts {
			c := uint32(1)
			if i < len(counts) {
				c = uint32(counts[i]) + 1
			}
			s.Points = append(s.Points, PointCount{Point: logpoint.ID(p), Count: c})
		}
		s.Normalize()
		var buf bytes.Buffer
		enc := NewEncoder(&buf)
		if err := enc.Encode(s); err != nil {
			return false
		}
		if err := enc.Flush(); err != nil {
			return false
		}
		var got Synopsis
		if err := NewDecoder(&buf).Decode(&got); err != nil {
			return false
		}
		if got.Stage != s.Stage || got.Host != s.Host || got.TaskID != s.TaskID ||
			!got.Start.Equal(s.Start) || got.Duration != s.Duration || len(got.Points) != len(s.Points) {
			return false
		}
		for i := range s.Points {
			if got.Points[i] != s.Points[i] {
				return false
			}
		}
		return got.Signature() == s.Signature()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
