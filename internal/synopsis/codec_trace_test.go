package synopsis

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"saad/internal/trace"
)

func traceTestSyn() *Synopsis {
	s := &Synopsis{
		Stage:    3,
		Host:     9,
		TaskID:   77,
		Start:    time.UnixMicro(1_700_000_000_000_000).UTC(),
		Duration: 12 * time.Millisecond,
		Points:   []PointCount{{Point: 1, Count: 2}, {Point: 5, Count: 1}},
	}
	s.Normalize()
	return s
}

func TestCodecTraceExtensionRoundTrip(t *testing.T) {
	s := traceTestSyn()
	s.Trace = &trace.Span{Stage: 3, Host: 9, TaskID: 77, Emit: 1_000_000, Send: 2_000_000}

	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.Encode(s); err != nil {
		t.Fatal(err)
	}
	// A second, untraced record: decoding it into the same struct must
	// clear the first record's span.
	plain := traceTestSyn()
	plain.TaskID = 78
	if err := enc.Encode(plain); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}

	dec := NewDecoder(&buf)
	var got Synopsis
	if err := dec.Decode(&got); err != nil {
		t.Fatal(err)
	}
	sp := got.Trace
	if sp == nil {
		t.Fatal("decoded synopsis lost its trace extension")
	}
	if sp.Emit != 1_000_000 || sp.Send != 2_000_000 {
		t.Fatalf("span stamps = emit %d send %d, want 1000000/2000000", sp.Emit, sp.Send)
	}
	if sp.Stage != 3 || sp.Host != 9 || sp.TaskID != 77 {
		t.Fatalf("span identity not filled from frame: %+v", sp)
	}
	if sp.Recv != 0 || sp.Done != 0 {
		t.Fatalf("decoder must not invent downstream stamps: %+v", sp)
	}
	if err := dec.Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Trace != nil {
		t.Fatal("span from a previous record leaked into an untraced decode")
	}
	if got.TaskID != 78 {
		t.Fatalf("second record task id = %d, want 78", got.TaskID)
	}
}

// TestCodecTraceCostsNothingWhenUnsampled pins the backward-compat /
// volume property: an unsampled synopsis encodes to exactly the same bytes
// as before tracing existed (no flags, no placeholder fields), so old and
// new peers interoperate frame by frame and Figure 8's volume story is
// untouched for the 1-in-N-complement majority.
func TestCodecTraceCostsNothingWhenUnsampled(t *testing.T) {
	s := traceTestSyn()
	plain := len(AppendRecord(nil, s))
	s.Trace = &trace.Span{Emit: 1}
	traced := len(AppendRecord(nil, s))
	if traced <= plain {
		t.Fatalf("traced record (%dB) should exceed plain (%dB)", traced, plain)
	}
	s.Trace = nil
	if again := len(AppendRecord(nil, s)); again != plain {
		t.Fatalf("unsampled record grew from %dB to %dB", plain, again)
	}
}

// TestCodecUnknownExtensionSkipped drives the forward-compat path: a frame
// carrying an extension this decoder has never heard of (and then a trace
// extension after it) decodes fully, proving the extension loop skips
// unknown ids instead of failing or stopping early.
func TestCodecUnknownExtensionSkipped(t *testing.T) {
	var body []byte
	body = binary.AppendUvarint(body, 3)         // stage
	body = binary.AppendUvarint(body, 9)         // host
	body = binary.AppendUvarint(body, 77)        // task id
	body = binary.AppendUvarint(body, 1_000_000) // start µs
	body = binary.AppendUvarint(body, 500)       // duration µs
	body = binary.AppendUvarint(body, 0)         // no points
	// Unknown extension id 99 with an opaque 3-byte payload.
	body = binary.AppendUvarint(body, 99)
	body = binary.AppendUvarint(body, 3)
	body = append(body, 0xDE, 0xAD, 0xBF)
	// Followed by a trace extension the decoder does understand.
	var payload []byte
	payload = binary.AppendUvarint(payload, 42)
	payload = binary.AppendUvarint(payload, 43)
	body = binary.AppendUvarint(body, extTrace)
	body = binary.AppendUvarint(body, uint64(len(payload)))
	body = append(body, payload...)

	var rec []byte
	rec = binary.AppendUvarint(rec, uint64(len(body)))
	rec = append(rec, body...)

	dec := NewDecoder(bytes.NewReader(rec))
	var got Synopsis
	if err := dec.Decode(&got); err != nil {
		t.Fatalf("decode with unknown extension failed: %v", err)
	}
	if got.TaskID != 77 || got.Host != 9 {
		t.Fatalf("fields wrong after extension skip: %+v", got)
	}
	if got.Trace == nil || got.Trace.Emit != 42 || got.Trace.Send != 43 {
		t.Fatalf("trace extension after unknown one not decoded: %+v", got.Trace)
	}

	// A truncated extension must error, not read past the body.
	bad := []byte{}
	bad = binary.AppendUvarint(bad, 3)
	bad = binary.AppendUvarint(bad, 9)
	bad = binary.AppendUvarint(bad, 77)
	bad = binary.AppendUvarint(bad, 1)
	bad = binary.AppendUvarint(bad, 1)
	bad = binary.AppendUvarint(bad, 0)
	bad = binary.AppendUvarint(bad, extTrace)
	bad = binary.AppendUvarint(bad, 10) // claims 10 payload bytes, has none
	var badRec []byte
	badRec = binary.AppendUvarint(badRec, uint64(len(bad)))
	badRec = append(badRec, bad...)
	if err := NewDecoder(bytes.NewReader(badRec)).Decode(&got); err == nil {
		t.Fatal("truncated extension decoded without error")
	}
}
