package synopsis

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"saad/internal/logpoint"
	"saad/internal/trace"
)

// Codec framing: each record is a uvarint length prefix followed by the
// record body. The body packs all fields as uvarints with delta-encoded
// log point ids, which keeps a typical synopsis under 30 bytes — the paper
// reports ~48 bytes average for its Java encoding; the volume comparison in
// Figure 8 hinges on this compactness.
//
// Frame extensions: after the fixed fields and the point list, a record may
// carry zero or more trailing extensions, each a uvarint extension id, a
// uvarint payload length, and the payload. Decoders skip extensions they do
// not understand, and pre-extension decoders (which stop reading after the
// point list) ignore the trailing bytes entirely — this is how the trace
// extension stays backward compatible per connection without any handshake:
// only sampled synopses pay the extra bytes, and old peers still decode
// every frame.

// extTrace carries the sampled pipeline span's origin timestamps: uvarint
// Emit then uvarint Send, both unix nanoseconds (0 = not stamped).
const extTrace = 1

// extRingEpoch carries the sender's federation ring epoch as one uvarint.
// Only emitted when nonzero, so non-federated streams stay byte-identical
// to their pre-extension encodings.
const extRingEpoch = 2

// maxRecordSize bounds a single encoded record to keep a corrupt or
// malicious length prefix from allocating unbounded memory.
const maxRecordSize = 1 << 20

// ErrRecordTooLarge is returned when a length prefix exceeds maxRecordSize.
var ErrRecordTooLarge = errors.New("synopsis: record exceeds size limit")

// uvarintLen returns the number of bytes binary.PutUvarint emits for v.
//
//saad:hotpath
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// tracePayloadSize returns the encoded size of the extTrace payload.
//
//saad:hotpath
func tracePayloadSize(sp *trace.Span) int {
	return uvarintLen(uint64(sp.Emit)) + uvarintLen(uint64(sp.Send))
}

// bodySize returns the exact encoded body length of s — the record bytes
// after the length prefix — computed arithmetically so encoders can reserve
// or prefix without producing the encoding first.
//
//saad:hotpath
func bodySize(s *Synopsis) int {
	n := uvarintLen(uint64(s.Stage)) +
		uvarintLen(uint64(s.Host)) +
		uvarintLen(s.TaskID) +
		uvarintLen(uint64(s.Start.UnixMicro())) +
		uvarintLen(uint64(s.Duration.Microseconds())) +
		uvarintLen(uint64(len(s.Points)))
	var prev logpoint.ID
	for _, pc := range s.Points {
		n += uvarintLen(uint64(pc.Point-prev)) + uvarintLen(uint64(pc.Count))
		prev = pc.Point
	}
	if sp := s.Trace; sp != nil {
		p := tracePayloadSize(sp)
		n += uvarintLen(extTrace) + uvarintLen(uint64(p)) + p
	}
	if s.RingEpoch != 0 {
		p := uvarintLen(s.RingEpoch)
		n += uvarintLen(extRingEpoch) + uvarintLen(uint64(p)) + p
	}
	return n
}

// appendBody appends the record body of s (no length prefix) to dst.
//
//saad:hotpath
func appendBody(dst []byte, s *Synopsis) []byte {
	dst = binary.AppendUvarint(dst, uint64(s.Stage))
	dst = binary.AppendUvarint(dst, uint64(s.Host))
	dst = binary.AppendUvarint(dst, s.TaskID)
	dst = binary.AppendUvarint(dst, uint64(s.Start.UnixMicro()))
	dst = binary.AppendUvarint(dst, uint64(s.Duration.Microseconds()))
	dst = binary.AppendUvarint(dst, uint64(len(s.Points)))
	var prev logpoint.ID
	for _, pc := range s.Points {
		dst = binary.AppendUvarint(dst, uint64(pc.Point-prev))
		dst = binary.AppendUvarint(dst, uint64(pc.Count))
		prev = pc.Point
	}
	if sp := s.Trace; sp != nil {
		dst = binary.AppendUvarint(dst, extTrace)
		dst = binary.AppendUvarint(dst, uint64(tracePayloadSize(sp)))
		dst = binary.AppendUvarint(dst, uint64(sp.Emit))
		dst = binary.AppendUvarint(dst, uint64(sp.Send))
	}
	if s.RingEpoch != 0 {
		dst = binary.AppendUvarint(dst, extRingEpoch)
		dst = binary.AppendUvarint(dst, uint64(uvarintLen(s.RingEpoch)))
		dst = binary.AppendUvarint(dst, s.RingEpoch)
	}
	return dst
}

// AppendRecord appends the canonical binary encoding of s to dst and returns
// the extended slice. The synopsis should be normalized. It is truly
// append-only: with sufficient capacity in dst it performs no allocation.
//
//saad:hotpath
func AppendRecord(dst []byte, s *Synopsis) []byte {
	dst = binary.AppendUvarint(dst, uint64(bodySize(s)))
	return appendBody(dst, s)
}

// EncodedSize returns the number of bytes AppendRecord would emit for s,
// computed arithmetically without producing the encoding.
//
//saad:hotpath
func EncodedSize(s *Synopsis) int {
	b := bodySize(s)
	return uvarintLen(uint64(b)) + b
}

// Encoder writes length-prefixed synopsis records to an io.Writer.
// Construct with NewEncoder; call Flush (or Close on the underlying sink)
// when done. Encoder is not safe for concurrent use.
type Encoder struct {
	w   *bufio.Writer
	buf []byte
	n   int64
}

// NewEncoder returns an encoder writing to w.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: bufio.NewWriter(w)}
}

// Encode writes one record.
//
//saad:hotpath
func (e *Encoder) Encode(s *Synopsis) error {
	e.buf = AppendRecord(e.buf[:0], s)
	n, err := e.w.Write(e.buf)
	e.n += int64(n)
	if err != nil {
		return fmt.Errorf("synopsis: write record: %w", err)
	}
	return nil
}

// Flush flushes buffered records to the underlying writer.
func (e *Encoder) Flush() error {
	if err := e.w.Flush(); err != nil {
		return fmt.Errorf("synopsis: flush: %w", err)
	}
	return nil
}

// BytesWritten returns the total bytes produced so far (pre-flush bytes
// included).
func (e *Encoder) BytesWritten() int64 { return e.n }

// Decoder reads length-prefixed synopsis records from an io.Reader.
// Decoder is not safe for concurrent use.
type Decoder struct {
	r   *bufio.Reader
	buf []byte
}

// NewDecoder returns a decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReader(r)}
}

// Decode reads the next record into s. It returns io.EOF at a clean end of
// stream and io.ErrUnexpectedEOF for a truncated record.
//
//saad:hotpath
func (d *Decoder) Decode(s *Synopsis) error {
	size, err := binary.ReadUvarint(d.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("synopsis: read length: %w", err)
	}
	if size > maxRecordSize {
		return fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, size)
	}
	if cap(d.buf) < int(size) {
		d.buf = make([]byte, size)
	}
	d.buf = d.buf[:size]
	if _, err := io.ReadFull(d.r, d.buf); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return io.ErrUnexpectedEOF
		}
		return fmt.Errorf("synopsis: read body: %w", err)
	}
	return decodeBody(d.buf, s)
}

//saad:hotpath
func decodeBody(buf []byte, s *Synopsis) error {
	get := func() (uint64, error) {
		v, n := binary.Uvarint(buf)
		if n <= 0 {
			return 0, io.ErrUnexpectedEOF
		}
		buf = buf[n:]
		return v, nil
	}
	stage, err := get()
	if err != nil {
		return fmt.Errorf("synopsis: decode stage: %w", err)
	}
	host, err := get()
	if err != nil {
		return fmt.Errorf("synopsis: decode host: %w", err)
	}
	task, err := get()
	if err != nil {
		return fmt.Errorf("synopsis: decode task id: %w", err)
	}
	startUs, err := get()
	if err != nil {
		return fmt.Errorf("synopsis: decode start: %w", err)
	}
	durUs, err := get()
	if err != nil {
		return fmt.Errorf("synopsis: decode duration: %w", err)
	}
	npts, err := get()
	if err != nil {
		return fmt.Errorf("synopsis: decode point count: %w", err)
	}
	if npts > uint64(len(buf)) { // each point needs >= 2 bytes; cheap sanity bound
		return fmt.Errorf("synopsis: %d points exceeds remaining %d bytes", npts, len(buf))
	}
	s.Stage = logpoint.StageID(stage)
	s.Host = uint16(host)
	s.TaskID = task
	s.Start = time.UnixMicro(int64(startUs)).UTC()
	s.Duration = time.Duration(durUs) * time.Microsecond
	s.Trace = nil // decoders reuse s; a prior record's span must not leak
	s.RingEpoch = 0
	if cap(s.Points) < int(npts) {
		s.Points = make([]PointCount, npts)
	}
	s.Points = s.Points[:npts]
	var prev logpoint.ID
	for i := range s.Points {
		delta, err := get()
		if err != nil {
			return fmt.Errorf("synopsis: decode point %d id: %w", i, err)
		}
		count, err := get()
		if err != nil {
			return fmt.Errorf("synopsis: decode point %d count: %w", i, err)
		}
		prev += logpoint.ID(delta)
		s.Points[i] = PointCount{Point: prev, Count: uint32(count)}
	}
	// Trailing frame extensions: skip unknown ids so newer peers can extend
	// the frame without breaking this decoder, mirroring how pre-extension
	// decoders ignore these bytes altogether.
	for len(buf) > 0 {
		extID, err := get()
		if err != nil {
			return fmt.Errorf("synopsis: decode extension id: %w", err)
		}
		extLen, err := get()
		if err != nil {
			return fmt.Errorf("synopsis: decode extension length: %w", err)
		}
		if extLen > uint64(len(buf)) {
			return fmt.Errorf("synopsis: extension %d length %d exceeds remaining %d bytes", extID, extLen, len(buf))
		}
		payload := buf[:extLen]
		buf = buf[extLen:]
		if err := applyExtension(s, extID, payload); err != nil {
			return err
		}
	}
	return nil
}

// applyExtension interprets one trailing frame extension on s. Unknown
// extension ids are skipped so newer peers can extend the record without
// breaking this decoder.
func applyExtension(s *Synopsis, extID uint64, payload []byte) error {
	if extID == extRingEpoch {
		epoch, n := binary.Uvarint(payload)
		if n <= 0 {
			return fmt.Errorf("synopsis: decode ring epoch: %w", io.ErrUnexpectedEOF)
		}
		s.RingEpoch = epoch
		return nil
	}
	if extID != extTrace {
		return nil
	}
	emit, n := binary.Uvarint(payload)
	if n <= 0 {
		return fmt.Errorf("synopsis: decode trace emit: %w", io.ErrUnexpectedEOF)
	}
	send, n2 := binary.Uvarint(payload[n:])
	if n2 <= 0 {
		return fmt.Errorf("synopsis: decode trace send: %w", io.ErrUnexpectedEOF)
	}
	s.Trace = &trace.Span{
		Stage:  uint16(s.Stage),
		Host:   s.Host,
		TaskID: s.TaskID,
		Emit:   int64(emit),
		Send:   int64(send),
	}
	return nil
}
