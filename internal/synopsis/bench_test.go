package synopsis

import (
	"bufio"
	"bytes"
	"testing"
)

// BenchmarkAppendRecord measures the v1 encode hot path. It must report
// 0 allocs/op: AppendRecord is append-only into the caller's buffer.
func BenchmarkAppendRecord(b *testing.B) {
	s := sampleSynopsis(7)
	dst := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = AppendRecord(dst[:0], s)
	}
	if len(dst) == 0 {
		b.Fatal("empty encoding")
	}
}

// BenchmarkDecodeRecord measures the v1 decode hot path into a reused
// synopsis. It must report 0 allocs/op.
func BenchmarkDecodeRecord(b *testing.B) {
	wire := AppendRecord(nil, sampleSynopsis(7))
	big := bytes.Repeat(wire, 1024)
	r := bytes.NewReader(big)
	dec := NewDecoder(r)
	var s Synopsis
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dec.Decode(&s); err != nil {
			r.Reset(big)
			dec = NewDecoder(r)
			i--
			continue
		}
	}
}

// BenchmarkAppendFrames measures v2 batch encode with a warm intern table.
func BenchmarkAppendFrames(b *testing.B) {
	batch := make([]*Synopsis, 128)
	for i := range batch {
		batch[i] = sampleSynopsis(i)
	}
	enc := NewBatchEncoder()
	dst := enc.AppendFrames(nil, batch) // warm table + scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = enc.AppendFrames(dst[:0], batch)
	}
	b.SetBytes(int64(len(dst)))
}

// BenchmarkDecodeBatch measures v2 batch decode into a reused synopsis.
func BenchmarkDecodeBatch(b *testing.B) {
	batch := make([]*Synopsis, 128)
	for i := range batch {
		batch[i] = sampleSynopsis(i)
	}
	// The stream is a defining frame followed by an all-refs frame, so the
	// decoder's intern table is valid from the first byte and the steady
	// state exercises the interned path.
	enc := NewBatchEncoder()
	wire := enc.AppendFrames(nil, batch)
	wire = enc.AppendFrames(wire, batch)
	r := bytes.NewReader(wire)
	br := bufio.NewReader(r)
	dec := NewBatchDecoder(br)
	var s Synopsis
	n := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dec.Decode(&s); err != nil {
			b.StopTimer()
			// Rewind: a fresh decoder must re-see the defining frame, so
			// rebuild the two-frame stream (define + refs) outside the timer.
			full := NewBatchEncoder()
			first := full.AppendFrames(nil, batch)
			both := full.AppendFrames(first, batch)
			r = bytes.NewReader(both)
			br.Reset(r)
			dec = NewBatchDecoder(br)
			b.StartTimer()
			i--
			continue
		}
		n++
	}
	if b.N > 0 && n == 0 {
		b.Fatal("no records decoded")
	}
}
