package synopsis

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"saad/internal/logpoint"
)

// Protocol v2 — the batched, interning wire format (DESIGN §15).
//
// v1 framing is one `uvarint len | body` record per synopsis. v2 is
// negotiated per connection by a client hello and groups records into batch
// frames:
//
//	uvarint frameLen | byte kind | uvarint n | n × record
//
// where each record is self-delimiting (no per-record length prefix):
//
//	uvarint groupRef          0 ⇒ inline def follows: uvarint stage, uvarint
//	                          host — the pair is appended to the
//	                          per-connection intern table (both sides apply
//	                          the same "append while the table has room"
//	                          rule, so no table synchronization is needed);
//	                          k>0 ⇒ the pair is intern table entry k-1
//	uvarint taskID
//	uvarint startUnixMicro
//	uvarint durationMicro
//	uvarint npts | npts × (uvarint pointDelta, uvarint count)
//	uvarint extCount | extCount × (uvarint extID, uvarint extLen, payload)
//
// The intern table is connection state: it starts empty on every connection
// and is never carried across reconnects — a resync resets the dictionary
// on both ends by construction, so a server joining mid-stream (or a client
// replaying spilled records after an outage) needs no resynchronization
// protocol.
//
// Hello negotiation: a v2 client opens with
//
//	uvarint helloMagic | uvarint maxVersion | uvarint flags
//
// and waits for the server's ack (same three fields, version = chosen). The
// magic is deliberately larger than maxRecordSize: a pre-v2 server reads it
// as an oversized v1 record length and drops the connection at once, which
// is the client's downgrade signal (redial speaking v1). A v1 client never
// sends a hello; a v2 server distinguishes the two by peeking at the first
// uvarint — v2 is therefore silent toward v1 clients, preserving the
// strictly one-way property old peers rely on.

const (
	// ProtocolV1 is the original per-record framing.
	ProtocolV1 = 1
	// ProtocolV2 is the batched framing with header interning.
	ProtocolV2 = 2
	// MaxProtocolVersion is the newest protocol this build speaks.
	MaxProtocolVersion = ProtocolV2

	// helloMagic opens a client hello. It must exceed maxRecordSize so v1
	// servers reject it (and hang up) instead of waiting for a giant record.
	helloMagic = 0x53414144 // "SAAD"

	// maxFrameSize bounds one v2 batch frame (corrupt length prefixes must
	// not allocate unbounded memory).
	maxFrameSize = 1 << 22
	// maxFrameBody is the soft cap batch encoders split frames at, leaving
	// headroom for the frame header itself.
	maxFrameBody = maxFrameSize - 64
	// MaxBatchRecords bounds the records carried by one batch frame.
	MaxBatchRecords = 4096
	// maxInternEntries bounds the per-connection intern table; once full,
	// further groups are sent inline forever (both sides stop appending at
	// the same point, keeping the tables identical).
	maxInternEntries = 1 << 16
	// maxRecordExtensions bounds the trailing extensions one v2 record may
	// carry.
	maxRecordExtensions = 16

	// frameBatch is the only v2 frame kind so far.
	frameBatch = 1
)

// ErrFrameTooLarge is returned when a v2 frame length exceeds maxFrameSize.
var ErrFrameTooLarge = errors.New("synopsis: frame exceeds size limit")

// ErrBadHello is returned when a hello or hello ack is malformed.
var ErrBadHello = errors.New("synopsis: malformed hello")

// AppendHello appends the client hello to dst: magic, the newest version
// the client speaks, and a zero flags word reserved for future use.
func AppendHello(dst []byte, maxVersion int) []byte {
	dst = binary.AppendUvarint(dst, helloMagic)
	dst = binary.AppendUvarint(dst, uint64(maxVersion))
	return binary.AppendUvarint(dst, 0)
}

// AppendHelloAck appends the server ack to dst: magic, the version chosen
// for the connection, and a zero flags word.
func AppendHelloAck(dst []byte, version int) []byte {
	dst = binary.AppendUvarint(dst, helloMagic)
	dst = binary.AppendUvarint(dst, uint64(version))
	return binary.AppendUvarint(dst, 0)
}

// ReadHelloAck reads the server's hello ack and returns the chosen
// protocol version.
func ReadHelloAck(r io.ByteReader) (int, error) {
	magic, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("synopsis: read hello ack: %w", err)
	}
	if magic != helloMagic {
		return 0, fmt.Errorf("%w: ack magic %#x", ErrBadHello, magic)
	}
	ver, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("synopsis: read hello ack version: %w", err)
	}
	if _, err := binary.ReadUvarint(r); err != nil { // flags (reserved)
		return 0, fmt.Errorf("synopsis: read hello ack flags: %w", err)
	}
	if ver == 0 || ver > MaxProtocolVersion {
		return 0, fmt.Errorf("%w: ack version %d", ErrBadHello, ver)
	}
	return int(ver), nil
}

// PeekHello inspects the start of a freshly accepted stream without
// consuming v1 bytes. It returns (maxVersion, true, nil) after consuming a
// client hello, or (0, false, nil) when the peer opened with v1 framing
// (nothing consumed). An error is a read failure surfaced to the caller
// unchanged (timeout, EOF, ...).
//
// The discrimination is cheap and exact: a v1 record length below
// maxRecordSize encodes in at most 3 uvarint bytes, while helloMagic needs
// 5, and the first byte of the magic has the continuation bit set — so one
// peeked byte settles most streams and five settle all of them.
func PeekHello(br *bufio.Reader) (int, bool, error) {
	first, err := br.Peek(1)
	if err != nil {
		return 0, false, err
	}
	if first[0]&0x80 == 0 {
		return 0, false, nil // short v1 record length; cannot be the magic
	}
	head, err := br.Peek(binary.MaxVarintLen32)
	if err != nil && len(head) == 0 {
		return 0, false, err
	}
	v, n := binary.Uvarint(head)
	if n <= 0 || v != helloMagic {
		return 0, false, nil // v1 record with a long length prefix
	}
	if _, err := br.Discard(n); err != nil {
		return 0, false, err
	}
	maxVer, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, false, fmt.Errorf("synopsis: read hello version: %w", err)
	}
	if _, err := binary.ReadUvarint(br); err != nil { // flags (reserved)
		return 0, false, fmt.Errorf("synopsis: read hello flags: %w", err)
	}
	if maxVer == 0 {
		return 0, false, fmt.Errorf("%w: hello version 0", ErrBadHello)
	}
	return int(maxVer), true, nil
}

// internKey is one (stage, host) group header.
type internKey struct {
	stage logpoint.StageID
	host  uint16
}

// BatchEncoder builds v2 batch frames with per-connection header
// interning. It is connection state: allocate one per connection (or Reset
// on reconnect) so encoder and decoder tables stay in lockstep. Not safe
// for concurrent use.
type BatchEncoder struct {
	ids      map[internKey]uint32
	body     []byte // reusable record-section scratch
	interned uint64
	// lastKey/lastID cache the most recent lookup: synopses arrive in
	// per-stage bursts, so a one-entry cache strips the map from most
	// records' hot path.
	lastKey internKey
	lastID  uint32
	lastOK  bool
}

// NewBatchEncoder returns an encoder with an empty intern table.
func NewBatchEncoder() *BatchEncoder {
	return &BatchEncoder{ids: make(map[internKey]uint32)}
}

// Reset clears the intern table for a new connection.
func (e *BatchEncoder) Reset() {
	clear(e.ids)
	e.lastOK = false
}

// InternedRefs returns how many record headers were emitted as one-uvarint
// intern references (rather than inline stage+host) since construction.
func (e *BatchEncoder) InternedRefs() uint64 { return e.interned }

// appendRecordV2 appends one self-delimiting v2 record to dst, updating
// the intern table.
//
//saad:hotpath
func (e *BatchEncoder) appendRecordV2(dst []byte, s *Synopsis) []byte {
	key := internKey{stage: s.Stage, host: s.Host}
	if e.lastOK && key == e.lastKey {
		dst = binary.AppendUvarint(dst, uint64(e.lastID)+1)
		e.interned++
	} else if id, ok := e.ids[key]; ok {
		dst = binary.AppendUvarint(dst, uint64(id)+1)
		e.interned++
		e.lastKey, e.lastID, e.lastOK = key, id, true
	} else {
		dst = binary.AppendUvarint(dst, 0)
		dst = binary.AppendUvarint(dst, uint64(s.Stage))
		dst = binary.AppendUvarint(dst, uint64(s.Host))
		if len(e.ids) < maxInternEntries {
			id := uint32(len(e.ids))
			e.ids[key] = id
			e.lastKey, e.lastID, e.lastOK = key, id, true
		}
	}
	dst = binary.AppendUvarint(dst, s.TaskID)
	dst = binary.AppendUvarint(dst, uint64(s.Start.UnixMicro()))
	dst = binary.AppendUvarint(dst, uint64(s.Duration.Microseconds()))
	dst = binary.AppendUvarint(dst, uint64(len(s.Points)))
	var prev logpoint.ID
	for _, pc := range s.Points {
		dst = binary.AppendUvarint(dst, uint64(pc.Point-prev))
		dst = binary.AppendUvarint(dst, uint64(pc.Count))
		prev = pc.Point
	}
	var extCount uint64
	if s.Trace != nil {
		extCount++
	}
	if s.RingEpoch != 0 {
		extCount++
	}
	dst = binary.AppendUvarint(dst, extCount)
	if sp := s.Trace; sp != nil {
		dst = binary.AppendUvarint(dst, extTrace)
		dst = binary.AppendUvarint(dst, uint64(tracePayloadSize(sp)))
		dst = binary.AppendUvarint(dst, uint64(sp.Emit))
		dst = binary.AppendUvarint(dst, uint64(sp.Send))
	}
	if s.RingEpoch != 0 {
		dst = binary.AppendUvarint(dst, extRingEpoch)
		dst = binary.AppendUvarint(dst, uint64(uvarintLen(s.RingEpoch)))
		dst = binary.AppendUvarint(dst, s.RingEpoch)
	}
	return dst
}

// AppendFrames appends batch to dst as one or more v2 batch frames,
// splitting whenever the accumulated record section would exceed the frame
// size bound, and returns the extended slice. With sufficient capacity in
// dst and the encoder's scratch, steady-state encoding performs no
// allocation.
//
//saad:hotpath
func (e *BatchEncoder) AppendFrames(dst []byte, batch []*Synopsis) []byte {
	for len(batch) > 0 {
		body := e.body[:0]
		n := 0
		for _, s := range batch {
			body = e.appendRecordV2(body, s)
			n++
			if n == MaxBatchRecords || len(body) >= maxFrameBody {
				break
			}
		}
		e.body = body
		batch = batch[n:]
		// frameLen covers the kind byte, the record count and the records.
		frameLen := 1 + uvarintLen(uint64(n)) + len(body)
		dst = binary.AppendUvarint(dst, uint64(frameLen))
		dst = append(dst, frameBatch)
		dst = binary.AppendUvarint(dst, uint64(n))
		dst = append(dst, body...)
	}
	return dst
}

// BatchDecoder reads v2 batch frames from a stream, mirroring the
// encoder's intern table. Decode has the same contract as Decoder.Decode —
// one synopsis per call, io.EOF at a clean frame boundary end of stream —
// so both protocol versions feed the same receive loop. Not safe for
// concurrent use.
type BatchDecoder struct {
	r      *bufio.Reader
	groups []internKey // decoder-side intern table
	buf    []byte      // whole-frame scratch, reused
	body   []byte      // unconsumed record bytes of the current frame
	left   int         // records left in the current frame
	// frameHook, when set, is called at each frame header with the record
	// count it announces (metrics: batch-size histogram).
	frameHook func(records int)
	interned  uint64
}

// NewBatchDecoder returns a decoder reading v2 frames from br. The caller
// hands over the buffered reader it used for hello detection so no
// buffered bytes are lost.
func NewBatchDecoder(br *bufio.Reader) *BatchDecoder {
	return &BatchDecoder{r: br}
}

// SetFrameHook registers fn to observe each frame's record count.
func (d *BatchDecoder) SetFrameHook(fn func(records int)) { d.frameHook = fn }

// InternedRefs returns how many record headers arrived as intern
// references since construction.
func (d *BatchDecoder) InternedRefs() uint64 { return d.interned }

// Remaining reports how many records of the current frame are still
// undecoded. Zero means the next Decode will read a fresh frame — i.e. the
// last Decode completed a frame, which is the natural batch boundary for
// handing decoded records downstream.
func (d *BatchDecoder) Remaining() int { return d.left }

// nextFrame reads one frame into the scratch buffer and prepares its
// record section. io.EOF means a clean end of stream at a frame boundary.
func (d *BatchDecoder) nextFrame() error {
	frameLen, err := binary.ReadUvarint(d.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("synopsis: read frame length: %w", err)
	}
	if frameLen > maxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, frameLen)
	}
	if frameLen < 2 {
		return fmt.Errorf("synopsis: frame length %d below header size", frameLen)
	}
	if cap(d.buf) < int(frameLen) {
		d.buf = make([]byte, frameLen)
	}
	d.buf = d.buf[:frameLen]
	if _, err := io.ReadFull(d.r, d.buf); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return io.ErrUnexpectedEOF
		}
		return fmt.Errorf("synopsis: read frame: %w", err)
	}
	kind := d.buf[0]
	if kind != frameBatch {
		return fmt.Errorf("synopsis: unknown frame kind %d", kind)
	}
	rest := d.buf[1:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return fmt.Errorf("synopsis: decode frame record count: %w", io.ErrUnexpectedEOF)
	}
	rest = rest[n:]
	if count == 0 || count > MaxBatchRecords {
		return fmt.Errorf("synopsis: frame record count %d out of range", count)
	}
	// Each record needs at least 6 bytes (six mandatory uvarints).
	if count > uint64(len(rest)) {
		return fmt.Errorf("synopsis: %d records exceed remaining %d frame bytes", count, len(rest))
	}
	d.body = rest
	d.left = int(count)
	if d.frameHook != nil {
		d.frameHook(int(count))
	}
	return nil
}

// Decode reads the next record into s, pulling the next batch frame off
// the stream when the current one is exhausted. Decoding into a reused s
// (or one drawn from a Pool) performs no steady-state allocation: the
// frame scratch, the intern table and s.Points are all reused.
//
//saad:hotpath
func (d *BatchDecoder) Decode(s *Synopsis) error {
	if d.left == 0 {
		if err := d.nextFrame(); err != nil {
			return err
		}
	}
	if err := d.decodeRecordV2(s); err != nil {
		// A malformed record poisons the whole frame; drop the remainder so
		// a resumed caller cannot misparse from mid-record.
		d.left, d.body = 0, nil
		return err
	}
	d.left--
	if d.left == 0 && len(d.body) != 0 {
		n := len(d.body)
		d.body = nil
		return fmt.Errorf("synopsis: %d trailing bytes after last record in frame", n)
	}
	return nil
}

// uvarint decodes one uvarint at the head of buf, returning the value and
// the remainder; ok is false on truncation or overflow. The one-byte fast
// path is taken by nearly every field of a steady-state record (interned
// refs, deltas, counts), keeping the whole call inlinable.
//
//saad:hotpath
func uvarint(buf []byte) (v uint64, rest []byte, ok bool) {
	if len(buf) > 0 && buf[0] < 0x80 {
		return uint64(buf[0]), buf[1:], true
	}
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, buf, false
	}
	return v, buf[n:], true
}

//saad:hotpath
func (d *BatchDecoder) decodeRecordV2(s *Synopsis) error {
	buf := d.body
	var ok bool
	var ref uint64
	if ref, buf, ok = uvarint(buf); !ok {
		return fmt.Errorf("synopsis: decode group ref: %w", io.ErrUnexpectedEOF)
	}
	var key internKey
	if ref == 0 {
		var stage, host uint64
		if stage, buf, ok = uvarint(buf); !ok {
			return fmt.Errorf("synopsis: decode stage: %w", io.ErrUnexpectedEOF)
		}
		if host, buf, ok = uvarint(buf); !ok {
			return fmt.Errorf("synopsis: decode host: %w", io.ErrUnexpectedEOF)
		}
		key = internKey{stage: logpoint.StageID(stage), host: uint16(host)}
		if len(d.groups) < maxInternEntries {
			d.groups = append(d.groups, key)
		}
	} else {
		if ref > uint64(len(d.groups)) {
			return fmt.Errorf("synopsis: group ref %d beyond intern table size %d", ref, len(d.groups))
		}
		key = d.groups[ref-1]
		d.interned++
	}
	var task, startUs, durUs, npts uint64
	if task, buf, ok = uvarint(buf); !ok {
		return fmt.Errorf("synopsis: decode task id: %w", io.ErrUnexpectedEOF)
	}
	if startUs, buf, ok = uvarint(buf); !ok {
		return fmt.Errorf("synopsis: decode start: %w", io.ErrUnexpectedEOF)
	}
	if durUs, buf, ok = uvarint(buf); !ok {
		return fmt.Errorf("synopsis: decode duration: %w", io.ErrUnexpectedEOF)
	}
	if npts, buf, ok = uvarint(buf); !ok {
		return fmt.Errorf("synopsis: decode point count: %w", io.ErrUnexpectedEOF)
	}
	if npts > uint64(len(buf)) { // each point needs >= 2 bytes; cheap sanity bound
		return fmt.Errorf("synopsis: %d points exceeds remaining %d bytes", npts, len(buf))
	}
	s.Stage = key.stage
	s.Host = key.host
	s.TaskID = task
	s.Start = time.UnixMicro(int64(startUs)).UTC()
	s.Duration = time.Duration(durUs) * time.Microsecond
	s.Trace = nil // decoders reuse s; a prior record's span must not leak
	s.RingEpoch = 0
	if cap(s.Points) < int(npts) {
		s.Points = make([]PointCount, npts)
	}
	s.Points = s.Points[:npts]
	var prev logpoint.ID
	for i := range s.Points {
		var delta, count uint64
		if delta, buf, ok = uvarint(buf); !ok {
			return fmt.Errorf("synopsis: decode point %d id: %w", i, io.ErrUnexpectedEOF)
		}
		if count, buf, ok = uvarint(buf); !ok {
			return fmt.Errorf("synopsis: decode point %d count: %w", i, io.ErrUnexpectedEOF)
		}
		prev += logpoint.ID(delta)
		s.Points[i] = PointCount{Point: prev, Count: uint32(count)}
	}
	var extCount uint64
	if extCount, buf, ok = uvarint(buf); !ok {
		return fmt.Errorf("synopsis: decode extension count: %w", io.ErrUnexpectedEOF)
	}
	if extCount > maxRecordExtensions {
		return fmt.Errorf("synopsis: extension count %d out of range", extCount)
	}
	for i := uint64(0); i < extCount; i++ {
		var extID, extLen uint64
		if extID, buf, ok = uvarint(buf); !ok {
			return fmt.Errorf("synopsis: decode extension id: %w", io.ErrUnexpectedEOF)
		}
		if extLen, buf, ok = uvarint(buf); !ok {
			return fmt.Errorf("synopsis: decode extension length: %w", io.ErrUnexpectedEOF)
		}
		if extLen > uint64(len(buf)) {
			return fmt.Errorf("synopsis: extension %d length %d exceeds remaining %d bytes", extID, extLen, len(buf))
		}
		payload := buf[:extLen]
		buf = buf[extLen:]
		if err := applyExtension(s, extID, payload); err != nil {
			return err
		}
	}
	d.body = buf
	return nil
}

// Pool is a bounded free list of Synopsis values for zero-allocation
// receive paths: the stream server draws from it per decoded record and
// the analyzer engine releases each synopsis back once its shard core is
// done. All methods are nil-safe — a nil *Pool degrades to plain
// allocation — and safe for concurrent use.
//
// The free list is a mutex-guarded stack rather than a channel: at
// millions of records per second the two channel operations per record
// dominate the receive loop, while a stack pop is a fraction of the cost
// and GetN amortizes even that across a whole refill chunk.
type Pool struct {
	mu   sync.Mutex
	free []*Synopsis
}

// NewPool returns a pool holding at most capacity idle synopses.
func NewPool(capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	return &Pool{free: make([]*Synopsis, 0, capacity)}
}

// Get returns an idle synopsis (fields zeroed, point capacity retained) or
// a fresh one when the pool is empty or nil.
//
//saad:hotpath
func (p *Pool) Get() *Synopsis {
	if p == nil {
		return &Synopsis{}
	}
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return s
	}
	p.mu.Unlock()
	return &Synopsis{}
}

// GetN fills every element of dst with an idle or fresh synopsis under a
// single lock — the receive loop's bulk refill, so per-record pool cost
// amortizes to near zero.
//
//saad:hotpath
func (p *Pool) GetN(dst []*Synopsis) {
	if p == nil {
		for i := range dst {
			dst[i] = &Synopsis{}
		}
		return
	}
	p.mu.Lock()
	n := len(p.free)
	take := len(dst)
	if take > n {
		take = n
	}
	for i := 0; i < take; i++ {
		dst[i] = p.free[n-1-i]
		p.free[n-1-i] = nil
	}
	p.free = p.free[:n-take]
	p.mu.Unlock()
	for i := take; i < len(dst); i++ {
		dst[i] = &Synopsis{}
	}
}

// Put recycles s. The caller must not touch s afterwards. When the pool is
// full (or nil) s is left to the garbage collector.
//
//saad:hotpath
func (p *Pool) Put(s *Synopsis) {
	if p == nil || s == nil {
		return
	}
	pts := s.Points[:0]
	*s = Synopsis{Points: pts}
	p.mu.Lock()
	if len(p.free) < cap(p.free) {
		p.free = append(p.free, s)
	}
	p.mu.Unlock()
}

// PutN recycles a batch under a single lock. The caller must not touch the
// elements (or the slice, which is cleared) afterwards; synopses beyond
// the pool's capacity are left to the garbage collector.
//
//saad:hotpath
func (p *Pool) PutN(batch []*Synopsis) {
	if p == nil {
		return
	}
	for _, s := range batch {
		if s == nil {
			continue
		}
		pts := s.Points[:0]
		*s = Synopsis{Points: pts}
	}
	p.mu.Lock()
	for i, s := range batch {
		if s == nil {
			continue
		}
		if len(p.free) == cap(p.free) {
			break
		}
		p.free = append(p.free, s)
		batch[i] = nil
	}
	p.mu.Unlock()
	clear(batch)
}
