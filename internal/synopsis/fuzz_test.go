package synopsis

import (
	"bufio"
	"bytes"
	"testing"
	"time"

	"saad/internal/logpoint"
	"saad/internal/trace"
)

// synopsisFromFuzz derives a normalized synopsis from fuzzer-chosen
// primitives. ptSeed drives a small deterministic point-list generator so
// the corpus explores empty, single and multi-point shapes.
func synopsisFromFuzz(stage, host uint16, task uint64, startUs, durUs int64, npts uint8, ptSeed uint64, traced bool) *Synopsis {
	if startUs < 0 {
		startUs = -startUs
	}
	if durUs < 0 {
		durUs = -durUs
	}
	s := &Synopsis{
		Stage:    logpoint.StageID(stage),
		Host:     host,
		TaskID:   task,
		Start:    time.UnixMicro(startUs % (1 << 48)).UTC(),
		Duration: time.Duration(durUs%(1<<40)) * time.Microsecond,
	}
	n := int(npts % 32)
	for i := 0; i < n; i++ {
		ptSeed = ptSeed*6364136223846793005 + 1442695040888963407
		s.Points = append(s.Points, PointCount{
			Point: logpoint.ID(ptSeed >> 48),
			Count: uint32(ptSeed>>16)%1000 + 1,
		})
	}
	s.Normalize()
	if traced {
		s.Trace = &trace.Span{
			Emit: int64(ptSeed % (1 << 50)),
			Send: int64((ptSeed >> 3) % (1 << 50)),
		}
	}
	return s
}

// FuzzRecordRoundTrip drives the same synopsis through both wire formats —
// a v1 record and a v2 batch (encoded twice, so the second copy exercises
// the interned-ref path) — and requires byte-exact field equality on every
// decode.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(uint16(1), uint16(2), uint64(3), int64(4), int64(5), uint8(3), uint64(6), false)
	f.Add(uint16(40), uint16(0), uint64(1<<60), int64(1<<40), int64(77), uint8(0), uint64(9), true)
	f.Add(uint16(0), uint16(65535), uint64(0), int64(0), int64(0), uint8(31), uint64(1), true)
	f.Fuzz(func(t *testing.T, stage, host uint16, task uint64, startUs, durUs int64, npts uint8, ptSeed uint64, traced bool) {
		want := synopsisFromFuzz(stage, host, task, startUs, durUs, npts, ptSeed, traced)

		// v1: length-prefixed single record.
		dec := NewDecoder(bytes.NewReader(AppendRecord(nil, want)))
		var got1 Synopsis
		if err := dec.Decode(&got1); err != nil {
			t.Fatalf("v1 decode: %v", err)
		}
		assertEqualSynopsis(t, 0, &got1, want)

		// v2: two batches from one connection-scoped encoder; the first
		// defines the (stage, host) group inline, the second refs it.
		enc := NewBatchEncoder()
		wire := enc.AppendFrames(nil, []*Synopsis{want})
		wire = enc.AppendFrames(wire, []*Synopsis{want})
		bdec := NewBatchDecoder(bufio.NewReader(bytes.NewReader(wire)))
		for i := 0; i < 2; i++ {
			var got2 Synopsis
			if err := bdec.Decode(&got2); err != nil {
				t.Fatalf("v2 decode copy %d: %v", i, err)
			}
			assertEqualSynopsis(t, i, &got2, want)
		}
		if enc.InternedRefs() != 1 {
			t.Fatalf("interned refs = %d, want exactly 1 (second copy)", enc.InternedRefs())
		}
	})
}

// FuzzDecodeCorrupt feeds arbitrary bytes to both decoders: they must
// terminate without panicking and without unbounded allocation, surfacing
// an error (or clean EOF) in bounded records.
func FuzzDecodeCorrupt(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendRecord(nil, sampleSynopsis(1)))
	f.Add(NewBatchEncoder().AppendFrames(nil, []*Synopsis{sampleSynopsis(2), sampleSynopsis(3)}))
	f.Add(AppendHello(nil, MaxProtocolVersion))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxRecords = 1 << 16

		dec := NewDecoder(bytes.NewReader(data))
		var s Synopsis
		for i := 0; ; i++ {
			if i > maxRecords {
				t.Fatalf("v1 decoder yielded more than %d records from %d bytes", maxRecords, len(data))
			}
			if err := dec.Decode(&s); err != nil {
				break
			}
			if len(s.Points) > len(data) {
				t.Fatalf("v1 decoder produced %d points from %d input bytes", len(s.Points), len(data))
			}
		}

		bdec := NewBatchDecoder(bufio.NewReader(bytes.NewReader(data)))
		for i := 0; ; i++ {
			if i > maxRecords {
				t.Fatalf("v2 decoder yielded more than %d records from %d bytes", maxRecords, len(data))
			}
			if err := bdec.Decode(&s); err != nil {
				break // clean EOF or a surfaced corruption error — both fine
			}
			if len(s.Points) > len(data) {
				t.Fatalf("v2 decoder produced %d points from %d input bytes", len(s.Points), len(data))
			}
		}
	})
}
