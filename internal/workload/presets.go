package workload

// YCSB core workload presets (Cooper et al., SoCC 2010), provided for
// comparison runs beyond the paper's write-heavy mix.

// WorkloadA is YCSB A: update heavy (50/50 read/update, zipfian).
func WorkloadA() Mix { return Mix{Read: 0.5, Update: 0.5} }

// WorkloadB is YCSB B: read mostly (95/5 read/update, zipfian).
func WorkloadB() Mix { return Mix{Read: 0.95, Update: 0.05} }

// WorkloadC is YCSB C: read only.
func WorkloadC() Mix { return Mix{Read: 1} }

// WorkloadD is YCSB D: read latest (95/5 read/insert; pair with
// NewLatestChooser).
func WorkloadD() Mix { return Mix{Read: 0.95, Insert: 0.05} }

// WorkloadE is YCSB E: short ranges (95/5 scan/insert).
func WorkloadE() Mix { return Mix{Scan: 0.95, Insert: 0.05} }

// WorkloadF is YCSB F: read-modify-write, approximated as an even
// read/update split at the storage tier (each RMW issues one read and one
// update).
func WorkloadF() Mix { return Mix{Read: 0.5, Update: 0.5} }
