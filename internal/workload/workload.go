// Package workload implements a YCSB-like workload generator (the paper
// drives its experiments with YCSB 0.1.4 and 100 emulated clients,
// Section 5.2): zipfian/latest/uniform key choosers, configurable
// read/update/insert/scan mixes, and a closed-loop emulated client pool
// driven in virtual time.
package workload

import (
	"container/heap"
	"fmt"
	"math"
	"strconv"
	"time"

	"saad/internal/vtime"
)

// OpType enumerates the YCSB core operations.
type OpType int

// Operation types.
const (
	OpRead OpType = iota + 1
	OpUpdate
	OpInsert
	OpScan
)

// String implements fmt.Stringer.
func (o OpType) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpInsert:
		return "insert"
	case OpScan:
		return "scan"
	default:
		return fmt.Sprintf("OpType(%d)", int(o))
	}
}

// IsWrite reports whether the operation mutates data.
func (o OpType) IsWrite() bool { return o == OpUpdate || o == OpInsert }

// Op is one generated operation.
type Op struct {
	Type OpType
	Key  string
	// Value is the payload for writes (shared scratch; copy to retain).
	Value []byte
	// ScanLen is the number of keys for OpScan.
	ScanLen int
}

// KeyChooser picks record indexes in [0, n).
type KeyChooser interface {
	Next(r *vtime.RNG, n int) int
}

// UniformChooser picks keys uniformly.
type UniformChooser struct{}

var _ KeyChooser = UniformChooser{}

// Next implements KeyChooser.
func (UniformChooser) Next(r *vtime.RNG, n int) int { return r.Intn(n) }

// ZipfianChooser implements the Gray et al. zipfian generator YCSB uses,
// with the standard constant 0.99 and hashing to scatter the hot items
// across the keyspace (YCSB's "scrambled zipfian").
type ZipfianChooser struct {
	theta float64
	// cached state for the last n
	n     int
	zetaN float64
	alpha float64
	eta   float64
	zeta2 float64
	// Scramble scatters hot keys over the keyspace when true.
	Scramble bool
}

var _ KeyChooser = (*ZipfianChooser)(nil)

// NewZipfianChooser returns a chooser with the YCSB default constant 0.99.
func NewZipfianChooser(scramble bool) *ZipfianChooser {
	return &ZipfianChooser{theta: 0.99, Scramble: scramble}
}

func zeta(n int, theta float64) float64 {
	var z float64
	for i := 1; i <= n; i++ {
		z += 1 / math.Pow(float64(i), theta)
	}
	return z
}

func (z *ZipfianChooser) prepare(n int) {
	if z.n == n {
		return
	}
	z.n = n
	z.zetaN = zeta(n, z.theta)
	z.zeta2 = zeta(2, z.theta)
	z.alpha = 1 / (1 - z.theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-z.theta)) / (1 - z.zeta2/z.zetaN)
}

// Next implements KeyChooser.
func (z *ZipfianChooser) Next(r *vtime.RNG, n int) int {
	if n <= 0 {
		return 0
	}
	z.prepare(n)
	u := r.Float64()
	uz := u * z.zetaN
	var idx int
	switch {
	case uz < 1:
		idx = 0
	case uz < 1+math.Pow(0.5, z.theta):
		idx = 1
	default:
		idx = int(float64(n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if idx >= n {
		idx = n - 1
	}
	if z.Scramble {
		idx = int(fnvHash(uint64(idx)) % uint64(n))
	}
	return idx
}

// LatestChooser skews toward the most recently inserted records (YCSB's
// "latest" distribution); it wraps a zipfian over the distance from the
// head of the keyspace.
type LatestChooser struct {
	z *ZipfianChooser
}

var _ KeyChooser = (*LatestChooser)(nil)

// NewLatestChooser returns a latest-skewed chooser.
func NewLatestChooser() *LatestChooser {
	return &LatestChooser{z: NewZipfianChooser(false)}
}

// Next implements KeyChooser.
func (l *LatestChooser) Next(r *vtime.RNG, n int) int {
	if n <= 0 {
		return 0
	}
	off := l.z.Next(r, n)
	return n - 1 - off
}

func fnvHash(v uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}

// Mix is an operation mix in relative weights.
type Mix struct {
	Read, Update, Insert, Scan float64
}

// WriteHeavy is the paper's workload shape: most requests reaching the
// storage tier are writes because reads are absorbed by caches above it
// (Section 5.2).
func WriteHeavy() Mix { return Mix{Read: 0.10, Update: 0.80, Insert: 0.10} }

// ReadMostly is YCSB workload B's shape, used for comparison runs.
func ReadMostly() Mix { return Mix{Read: 0.95, Update: 0.05} }

// Config configures a Generator.
type Config struct {
	// Records is the initial keyspace size.
	Records int
	// ValueSize is the payload size for writes. Default 100 bytes
	// (YCSB's field layout compressed to one field).
	ValueSize int
	// Mix is the operation mix; zero value defaults to WriteHeavy.
	Mix Mix
	// Chooser picks keys; nil defaults to scrambled zipfian.
	Chooser KeyChooser
	// MaxScanLen bounds scan lengths. Default 50.
	MaxScanLen int
	// Seed seeds the generator's RNG.
	Seed uint64
}

// Generator produces operations. Not safe for concurrent use.
type Generator struct {
	cfg     Config
	rng     *vtime.RNG
	records int
	value   []byte
	total   float64
}

// NewGenerator returns a generator over cfg.
func NewGenerator(cfg Config) *Generator {
	if cfg.Records <= 0 {
		cfg.Records = 1000
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 100
	}
	if cfg.Mix == (Mix{}) {
		cfg.Mix = WriteHeavy()
	}
	if cfg.Chooser == nil {
		cfg.Chooser = NewZipfianChooser(true)
	}
	if cfg.MaxScanLen <= 0 {
		cfg.MaxScanLen = 50
	}
	g := &Generator{
		cfg:     cfg,
		rng:     vtime.NewRNG(cfg.Seed),
		records: cfg.Records,
		value:   make([]byte, cfg.ValueSize),
	}
	for i := range g.value {
		g.value[i] = byte('a' + i%26)
	}
	g.total = cfg.Mix.Read + cfg.Mix.Update + cfg.Mix.Insert + cfg.Mix.Scan
	return g
}

// Records returns the current keyspace size (grows with inserts).
func (g *Generator) Records() int { return g.records }

// Key renders the i-th record's key in YCSB style.
func Key(i int) string { return "user" + strconv.Itoa(i) }

// Next produces the next operation.
func (g *Generator) Next() Op {
	u := g.rng.Float64() * g.total
	m := g.cfg.Mix
	switch {
	case u < m.Read:
		return Op{Type: OpRead, Key: Key(g.cfg.Chooser.Next(g.rng, g.records))}
	case u < m.Read+m.Update:
		return Op{Type: OpUpdate, Key: Key(g.cfg.Chooser.Next(g.rng, g.records)), Value: g.value}
	case u < m.Read+m.Update+m.Insert:
		k := Key(g.records)
		g.records++
		return Op{Type: OpInsert, Key: k, Value: g.value}
	default:
		return Op{
			Type:    OpScan,
			Key:     Key(g.cfg.Chooser.Next(g.rng, g.records)),
			ScanLen: 1 + g.rng.Intn(g.cfg.MaxScanLen),
		}
	}
}

// ClientPool is a closed-loop pool of emulated clients in virtual time:
// each client issues its next operation only after its previous one
// completed plus think time. This is what makes the simulated throughput
// respond to injected slowdowns the way the paper's YCSB clients do.
type ClientPool struct {
	heap  clientHeap
	think time.Duration
}

type clientSlot struct {
	free time.Time
	id   int
}

type clientHeap []clientSlot

func (h clientHeap) Len() int           { return len(h) }
func (h clientHeap) Less(i, j int) bool { return h[i].free.Before(h[j].free) }
func (h clientHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *clientHeap) Push(x any)        { *h = append(*h, x.(clientSlot)) }
func (h *clientHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// NewClientPool creates n clients all free at start, with the given think
// time between operations.
func NewClientPool(n int, start time.Time, think time.Duration) *ClientPool {
	p := &ClientPool{think: think}
	p.heap = make(clientHeap, 0, n)
	for i := 0; i < n; i++ {
		p.heap = append(p.heap, clientSlot{free: start, id: i})
	}
	heap.Init(&p.heap)
	return p
}

// Acquire returns the next client to become free and its issue time.
func (p *ClientPool) Acquire() (id int, at time.Time) {
	slot := heap.Pop(&p.heap).(clientSlot)
	return slot.id, slot.free
}

// Release marks the client free again after its operation completed at
// done (plus think time).
func (p *ClientPool) Release(id int, done time.Time) {
	heap.Push(&p.heap, clientSlot{free: done.Add(p.think), id: id})
}

// Len returns the number of idle clients currently in the pool.
func (p *ClientPool) Len() int { return p.heap.Len() }
