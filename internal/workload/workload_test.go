package workload

import (
	"errors"
	"strings"
	"testing"
	"time"

	"saad/internal/vtime"
)

var errSentinel = errors.New("op failed")

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestOpTypeStringsAndIsWrite(t *testing.T) {
	if OpRead.String() != "read" || OpUpdate.String() != "update" ||
		OpInsert.String() != "insert" || OpScan.String() != "scan" {
		t.Fatal("op strings wrong")
	}
	if !strings.Contains(OpType(9).String(), "OpType") {
		t.Fatal("unknown op string wrong")
	}
	if OpRead.IsWrite() || OpScan.IsWrite() || !OpUpdate.IsWrite() || !OpInsert.IsWrite() {
		t.Fatal("IsWrite wrong")
	}
}

func TestUniformChooserRange(t *testing.T) {
	r := vtime.NewRNG(1)
	c := UniformChooser{}
	seen := make(map[int]int)
	for i := 0; i < 10000; i++ {
		v := c.Next(r, 10)
		if v < 0 || v >= 10 {
			t.Fatalf("out of range: %d", v)
		}
		seen[v]++
	}
	for v, n := range seen {
		if n < 700 || n > 1300 {
			t.Fatalf("uniform bucket %d has %d/10000", v, n)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	r := vtime.NewRNG(2)
	z := NewZipfianChooser(false)
	const n = 1000
	counts := make([]int, n)
	for i := 0; i < 100000; i++ {
		v := z.Next(r, n)
		if v < 0 || v >= n {
			t.Fatalf("out of range: %d", v)
		}
		counts[v]++
	}
	// Item 0 must dominate, and the head must be heavy: YCSB zipfian 0.99
	// gives item 0 roughly 7-8% of the mass for n=1000.
	if counts[0] < 40000/10 {
		t.Fatalf("head count = %d, not zipfian", counts[0])
	}
	if counts[0] <= counts[1] || counts[1] <= counts[10] {
		t.Fatalf("not monotone: c0=%d c1=%d c10=%d", counts[0], counts[1], counts[10])
	}
	tail := 0
	for _, c := range counts[n/2:] {
		tail += c
	}
	if tail > 20000 {
		t.Fatalf("tail mass = %d, distribution too flat", tail)
	}
}

func TestScrambledZipfianSpreadsHotKeys(t *testing.T) {
	r := vtime.NewRNG(3)
	z := NewZipfianChooser(true)
	const n = 1000
	counts := make([]int, n)
	for i := 0; i < 100000; i++ {
		counts[z.Next(r, n)]++
	}
	// Still skewed: some item has far more than average...
	max, maxIdx := 0, 0
	for i, c := range counts {
		if c > max {
			max, maxIdx = c, i
		}
	}
	if max < 3000 {
		t.Fatalf("max count = %d, scrambling destroyed skew", max)
	}
	// ...but the hottest item need not be item 0.
	_ = maxIdx
}

func TestZipfianAdaptsToN(t *testing.T) {
	r := vtime.NewRNG(4)
	z := NewZipfianChooser(false)
	if v := z.Next(r, 10); v < 0 || v >= 10 {
		t.Fatalf("n=10: %d", v)
	}
	if v := z.Next(r, 100000); v < 0 || v >= 100000 {
		t.Fatalf("n=100000: %d", v)
	}
	if v := z.Next(r, 0); v != 0 {
		t.Fatalf("n=0: %d", v)
	}
}

func TestLatestChooserSkewsToNewest(t *testing.T) {
	r := vtime.NewRNG(5)
	l := NewLatestChooser()
	const n = 1000
	newest := 0
	for i := 0; i < 10000; i++ {
		v := l.Next(r, n)
		if v < 0 || v >= n {
			t.Fatalf("out of range: %d", v)
		}
		if v >= n-10 {
			newest++
		}
	}
	if newest < 2000 {
		t.Fatalf("newest-10 share = %d/10000, not latest-skewed", newest)
	}
	if l.Next(r, 0) != 0 {
		t.Fatal("n=0 not handled")
	}
}

func TestGeneratorMix(t *testing.T) {
	g := NewGenerator(Config{Records: 1000, Seed: 6, Mix: WriteHeavy()})
	var reads, updates, inserts, scans int
	for i := 0; i < 10000; i++ {
		op := g.Next()
		switch op.Type {
		case OpRead:
			reads++
		case OpUpdate:
			updates++
			if len(op.Value) == 0 {
				t.Fatal("update without value")
			}
		case OpInsert:
			inserts++
		case OpScan:
			scans++
		}
		if op.Key == "" {
			t.Fatal("empty key")
		}
	}
	if updates < 7500 || updates > 8500 {
		t.Fatalf("updates = %d, want ~8000", updates)
	}
	if reads < 700 || reads > 1300 {
		t.Fatalf("reads = %d, want ~1000", reads)
	}
	if scans != 0 {
		t.Fatalf("scans = %d in WriteHeavy", scans)
	}
	if g.Records() != 1000+inserts {
		t.Fatalf("Records = %d after %d inserts", g.Records(), inserts)
	}
}

func TestGeneratorScan(t *testing.T) {
	g := NewGenerator(Config{Records: 100, Seed: 7, Mix: Mix{Scan: 1}, MaxScanLen: 10})
	for i := 0; i < 100; i++ {
		op := g.Next()
		if op.Type != OpScan {
			t.Fatalf("op = %v", op.Type)
		}
		if op.ScanLen < 1 || op.ScanLen > 10 {
			t.Fatalf("scan len = %d", op.ScanLen)
		}
	}
}

func TestGeneratorDefaults(t *testing.T) {
	g := NewGenerator(Config{Seed: 1})
	op := g.Next()
	if op.Key == "" {
		t.Fatal("default generator broken")
	}
	if g.Records() < 1000 {
		t.Fatalf("default records = %d", g.Records())
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(Config{Records: 500, Seed: 11})
	b := NewGenerator(Config{Records: 500, Seed: 11})
	for i := 0; i < 1000; i++ {
		x, y := a.Next(), b.Next()
		if x.Type != y.Type || x.Key != y.Key {
			t.Fatalf("generators diverged at %d: %+v vs %+v", i, x, y)
		}
	}
}

func TestKeyFormat(t *testing.T) {
	if Key(42) != "user42" {
		t.Fatalf("Key = %q", Key(42))
	}
}

func TestClientPoolClosedLoop(t *testing.T) {
	p := NewClientPool(3, epoch, 10*time.Millisecond)
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	id1, at1 := p.Acquire()
	if !at1.Equal(epoch) {
		t.Fatalf("first acquire at %v", at1)
	}
	id2, _ := p.Acquire()
	id3, _ := p.Acquire()
	if id1 == id2 || id2 == id3 || id1 == id3 {
		t.Fatal("duplicate client ids")
	}
	if p.Len() != 0 {
		t.Fatalf("Len after 3 acquires = %d", p.Len())
	}
	// Client 1 finishes quickly, client 2 slowly.
	p.Release(id1, epoch.Add(5*time.Millisecond))
	p.Release(id2, epoch.Add(100*time.Millisecond))
	p.Release(id3, epoch.Add(200*time.Millisecond))
	gotID, gotAt := p.Acquire()
	if gotID != id1 {
		t.Fatalf("next client = %d, want fastest %d", gotID, id1)
	}
	if !gotAt.Equal(epoch.Add(15 * time.Millisecond)) { // 5ms done + 10ms think
		t.Fatalf("next at %v", gotAt)
	}
}

func TestClientPoolThroughputRespondsToLatency(t *testing.T) {
	// With closed-loop clients, doubling service time roughly halves
	// completions in a fixed horizon.
	run := func(service time.Duration) int {
		p := NewClientPool(10, epoch, 0)
		horizon := epoch.Add(time.Second)
		completions := 0
		for {
			id, at := p.Acquire()
			if at.After(horizon) {
				break
			}
			done := at.Add(service)
			completions++
			p.Release(id, done)
		}
		return completions
	}
	fast := run(time.Millisecond)
	slow := run(2 * time.Millisecond)
	ratio := float64(fast) / float64(slow)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("throughput ratio = %v, want ~2", ratio)
	}
}

func TestRetryPolicy(t *testing.T) {
	var none RetryPolicy
	if none.ShouldRetry(1, errSentinel, time.Second) {
		t.Fatal("zero policy retried")
	}
	p := RetryPolicy{Max: 2, LatencyThreshold: 100 * time.Millisecond}
	if !p.ShouldRetry(1, errSentinel, 0) {
		t.Fatal("no retry on error")
	}
	if !p.ShouldRetry(2, errSentinel, 0) {
		t.Fatal("no retry on last budgeted attempt")
	}
	if p.ShouldRetry(3, errSentinel, 0) {
		t.Fatal("retried past Max")
	}
	if !p.ShouldRetry(1, nil, 150*time.Millisecond) {
		t.Fatal("no retry on slow success")
	}
	if p.ShouldRetry(1, nil, 50*time.Millisecond) {
		t.Fatal("retried a fast success")
	}
	errOnly := RetryPolicy{Max: 1}
	if errOnly.ShouldRetry(1, nil, time.Hour) {
		t.Fatal("latency retry without threshold")
	}
}
