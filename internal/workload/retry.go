package workload

import "time"

// RetryPolicy models client-side retries: the ingredient that turns an
// injected slowdown into a metastable storm. When an operation fails — or
// merely exceeds the client's latency SLO — the client re-issues it, which
// consumes cluster resources again, which slows the next operation, which
// triggers more retries. The policy itself is just the decision function;
// the workload driver owns the loop.
type RetryPolicy struct {
	// Max is the retry budget per operation (0 disables retries).
	Max int
	// LatencyThreshold triggers a retry when a *successful* operation took
	// longer than this (the impatient-client pattern); 0 retries only on
	// error.
	LatencyThreshold time.Duration
	// Backoff is the client-side pause before each retry (applied flat:
	// aggressive clients are what make storms metastable).
	Backoff time.Duration
}

// ShouldRetry reports whether an operation that finished with err after
// latency should be re-issued, given it has been attempted attempt times
// already (first try = 1).
func (p RetryPolicy) ShouldRetry(attempt int, err error, latency time.Duration) bool {
	if p.Max <= 0 || attempt > p.Max {
		return false
	}
	if err != nil {
		return true
	}
	return p.LatencyThreshold > 0 && latency > p.LatencyThreshold
}
