package saad_test

import (
	"testing"
	"time"

	"saad"
	"saad/internal/faults"
	"saad/internal/storage/cassandra"
	"saad/internal/workload"
)

// TestIntegrationCassandraOverTCP exercises the full deployment shape the
// paper describes: per-node task execution trackers stream synopses over
// TCP to a centralized analyzer, which trains and then detects an injected
// fault, end to end.
func TestIntegrationCassandraOverTCP(t *testing.T) {
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

	// Central analyzer side: a TCP server feeding a channel.
	central := saad.NewChannelSink(1 << 20)
	srv, err := saad.ListenSynopses("127.0.0.1:0", central)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// runCluster drives a simulated Cassandra cluster whose trackers emit
	// through a TCP client (as a node-local SAAD agent would).
	runCluster := func(seed uint64, inj *faults.Injector, horizon time.Duration) {
		t.Helper()
		client, err := saad.DialAnalyzer(srv.Addr(), 0)
		if err != nil {
			t.Fatal(err)
		}
		cass, err := cassandra.New(cassandra.Config{
			Hosts: 4, Seed: seed, Sink: client, Epoch: epoch, Injector: inj,
		})
		if err != nil {
			t.Fatal(err)
		}
		gen := workload.NewGenerator(workload.Config{Records: 500, Seed: seed + 1, Mix: workload.WriteHeavy()})
		pool := workload.NewClientPool(16, epoch, 40*time.Millisecond)
		end := epoch.Add(horizon)
		for {
			id, at := pool.Acquire()
			if at.After(end) {
				break
			}
			done, _ := cass.Execute(gen.Next(), at)
			pool.Release(id, done)
		}
		if err := client.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// collect drains the central channel until it has been quiet briefly.
	collect := func() []*saad.Synopsis {
		var out []*saad.Synopsis
		deadline := time.After(10 * time.Second)
		quiet := 0
		for quiet < 5 {
			select {
			case s := <-central.C():
				out = append(out, s)
				quiet = 0
			case <-time.After(50 * time.Millisecond):
				quiet++
			case <-deadline:
				t.Fatalf("collection timed out with %d synopses", len(out))
			}
		}
		return out
	}

	// Phase 1: healthy run -> training trace -> model.
	runCluster(11, nil, 30*time.Second)
	trainTrace := collect()
	if len(trainTrace) < 5000 {
		t.Fatalf("training trace = %d synopses", len(trainTrace))
	}
	cfg := saad.DefaultAnalyzerConfig()
	cfg.Window = 5 * time.Second
	model, err := saad.Train(cfg, trainTrace)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 2: faulted run -> detection.
	inj := faults.NewInjector(faults.Fault{
		Name: "error-WAL-high", Point: faults.PointWALAppend, Mode: faults.ModeError,
		Probability: 1, Host: 4, From: epoch.Add(10 * time.Second), To: epoch.Add(time.Hour),
	})
	runCluster(13, inj, 30*time.Second)
	faultTrace := collect()

	det := saad.NewDetector(model)
	var anomalies []saad.Anomaly
	for _, s := range faultTrace {
		anomalies = append(anomalies, det.Feed(s)...)
	}
	anomalies = append(anomalies, det.Flush()...)
	if len(anomalies) == 0 {
		t.Fatal("no anomalies detected end to end")
	}
	host4Flow := 0
	for _, a := range anomalies {
		if a.Host == 4 && a.Kind == saad.FlowAnomaly {
			host4Flow++
		}
	}
	if host4Flow == 0 {
		t.Fatalf("fault on host 4 not localized; anomalies: %d total", len(anomalies))
	}

	// The alarm filter must keep the fault burst while trimming the total.
	filt := saad.NewAlarmFilter(2, 3, cfg.Window)
	det2 := saad.NewDetector(model)
	var filtered []saad.Anomaly
	for _, s := range faultTrace {
		filtered = append(filtered, filt.Filter(det2.Feed(s))...)
	}
	filtered = append(filtered, filt.Filter(det2.Flush())...)
	if len(filtered) == 0 {
		t.Fatal("alarm filter suppressed a sustained fault burst")
	}
	if len(filtered) > len(anomalies) {
		t.Fatalf("filter grew the anomaly set: %d > %d", len(filtered), len(anomalies))
	}
}
