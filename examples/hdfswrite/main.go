// HDFS write pipeline — the paper's motivating example (Figures 2-4).
//
// A 4-node DataNode tier executes 3-way replicated block writes through the
// DataXceiver and PacketResponder stages. SAAD learns the normal flows
// (including the rare empty-packet flow, which it classifies as a known
// flow outlier) from a healthy trace, then a disk hog slows one node: SAAD
// pinpoints performance anomalies in exactly the DataXceiver stage of that
// node, from log points alone.
//
// Run with: go run ./examples/hdfswrite
package main

import (
	"fmt"
	"os"
	"time"

	"saad"
	"saad/internal/cluster"
	"saad/internal/faults"
	"saad/internal/report"
	"saad/internal/storage/hdfs"
	"saad/internal/vtime"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hdfswrite:", err)
		os.Exit(1)
	}
}

func run() error {
	epoch := time.Date(2026, 1, 1, 9, 0, 0, 0, time.UTC)

	// drive executes `n` block writes against a fresh tier, arriving at a
	// steady ~33 blocks/s, and returns the synopses.
	drive := func(seed uint64, n int, hogs *faults.HogSchedule) ([]*saad.Synopsis, *saad.Dictionary, error) {
		sink := saad.NewChannelSink(1 << 20)
		cl := cluster.New(cluster.Config{Hosts: 4, Seed: seed, Sink: sink, Epoch: epoch, Hogs: hogs})
		tier, err := hdfs.New(cl, hdfs.Config{EmptyPacketChance: 0.002})
		if err != nil {
			return nil, nil, err
		}
		rng := vtime.NewRNG(seed + 1)
		at := epoch
		for i := 0; i < n; i++ {
			tier.Tick(at)
			if _, err := tier.WriteBlock(rng.Intn(4), 128<<10, at); err != nil {
				return nil, nil, err
			}
			at = at.Add(30 * time.Millisecond)
		}
		return sink.Drain(), cl.Dict, nil
	}

	fmt.Println("training on 20000 healthy block writes...")
	trainSyns, dict, err := drive(1, 20000, nil)
	if err != nil {
		return err
	}
	cfg := saad.DefaultAnalyzerConfig()
	cfg.Window = 30 * time.Second
	model, err := saad.Train(cfg, trainSyns)
	if err != nil {
		return err
	}

	// Show what training learned about the DataXceiver write flows.
	dxID, _ := dict.StageByName("DataXceiver")
	sm := model.Stage(dxID)
	fmt.Printf("DataXceiver: %d signatures learned from %d tasks\n", len(sm.Signatures), sm.Total)
	for _, sig := range sm.SortedSignatures() {
		kind := "normal "
		if sig.FlowOutlier {
			kind = "outlier"
		}
		fmt.Printf("  %s share=%.5f dur<=%8v  %v\n", kind, sig.Share,
			sig.DurationThreshold.Round(time.Microsecond), sig.Signature)
	}

	// 10000 writes at 30 ms spacing span 5 minutes; the hog covers the
	// second half.
	fmt.Println("\nrunning 10000 writes with a disk hog on host 2 after 2.5 minutes...")
	hogs := faults.NewHogSchedule(faults.HogWindow{
		From: epoch.Add(150 * time.Second), To: epoch.Add(time.Hour), Procs: 4, Host: 2,
	})
	faultSyns, _, err := drive(7, 10000, hogs)
	if err != nil {
		return err
	}
	det := saad.NewDetector(model)
	var anomalies []saad.Anomaly
	for _, s := range faultSyns {
		anomalies = append(anomalies, det.Feed(s)...)
	}
	anomalies = append(anomalies, det.Flush()...)

	if len(anomalies) == 0 {
		return fmt.Errorf("no anomalies detected (unexpected)")
	}
	perHost := map[uint16]int{}
	for _, a := range anomalies {
		perHost[a.Host]++
	}
	fmt.Printf("\nSAAD flagged %d anomalies; per host: %v (fault was on host 2)\n\n", len(anomalies), perHost)
	shown := 0
	for _, a := range anomalies {
		if a.Host == 2 && a.Kind == saad.PerformanceAnomaly && shown < 2 {
			fmt.Println(report.FormatAnomaly(a, dict))
			fmt.Println()
			shown++
		}
	}
	return nil
}
