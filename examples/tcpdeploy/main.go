// Distributed deployment — the paper's Figure 5 topology over real TCP.
//
// Four "nodes" (one goroutine each) run instrumented stages and stream
// task synopses through TCP clients to one central analyzer server, which
// trains a model from the first phase of traffic and then detects a fault
// injected on node 3 — without ever seeing a log message.
//
// Run with: go run ./examples/tcpdeploy
package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"saad"
)

const (
	hosts        = 4
	trainTasks   = 4000 // per host
	detectTasks  = 800  // per host
	pointRecv    = saad.LogPointID(1)
	pointCharge  = saad.LogPointID(2)
	pointConfirm = saad.LogPointID(3)
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tcpdeploy:", err)
		os.Exit(1)
	}
}

// node simulates one server process: a Checkout stage executing tasks at a
// deterministic virtual cadence, streaming synopses to addr. When faulty,
// tasks terminate prematurely after the first log point. The reconnecting
// client rides out analyzer restarts: synopses spill to a bounded in-memory
// ring and replay once the analyzer is back.
func node(host uint16, addr string, tasks int, start time.Time, faulty bool) error {
	client, err := saad.DialAnalyzer(addr, 0, saad.WithReconnect(saad.ReconnectConfig{
		SpillCapacity: 1 << 14,
	}))
	if err != nil {
		return err
	}
	tr := saad.NewTracker(host, client)
	at := start
	for i := 0; i < tasks; i++ {
		task := tr.Begin(1, at)
		task.Hit(pointRecv, at.Add(100*time.Microsecond))
		if !faulty {
			task.Hit(pointCharge, at.Add(2*time.Millisecond))
			task.Hit(pointConfirm, at.Add(3*time.Millisecond))
		}
		task.End(at.Add(3 * time.Millisecond))
		at = at.Add(10 * time.Millisecond)
	}
	return client.Close()
}

func run() error {
	epoch := time.Date(2026, 1, 1, 9, 0, 0, 0, time.UTC)

	// Central analyzer: a TCP server feeding a buffered channel.
	central := saad.NewChannelSink(1 << 18)
	srv, err := saad.ListenSynopses("127.0.0.1:0", central)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("central analyzer listening on %s\n", srv.Addr())

	runPhase := func(tasks int, start time.Time, faultyHost uint16) error {
		var wg sync.WaitGroup
		errs := make([]error, hosts)
		for h := uint16(1); h <= hosts; h++ {
			wg.Add(1)
			go func(h uint16) {
				defer wg.Done()
				errs[h-1] = node(h, srv.Addr(), tasks, start, h == faultyHost)
			}(h)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	collect := func(want int) []*saad.Synopsis {
		var out []*saad.Synopsis
		deadline := time.After(10 * time.Second)
		for len(out) < want {
			select {
			case s := <-central.C():
				out = append(out, s)
			case <-deadline:
				return out
			}
		}
		return out
	}

	// Phase 1: all four nodes healthy; train.
	fmt.Printf("phase 1: %d healthy tasks per node -> training\n", trainTasks)
	if err := runPhase(trainTasks, epoch, 0); err != nil {
		return err
	}
	trace := collect(hosts * trainTasks)
	cfg := saad.DefaultAnalyzerConfig()
	cfg.Window = 2 * time.Second
	model, err := saad.Train(cfg, trace)
	if err != nil {
		return err
	}
	fmt.Printf("model trained on %d synopses from %d nodes\n\n", model.TrainedOn, hosts)

	// Phase 2: node 3 turns faulty.
	fmt.Printf("phase 2: %d tasks per node, premature terminations on node 3\n", detectTasks)
	if err := runPhase(detectTasks, epoch.Add(time.Hour), 3); err != nil {
		return err
	}
	faultTrace := collect(hosts * detectTasks)

	det := saad.NewDetector(model)
	var anomalies []saad.Anomaly
	for _, s := range faultTrace {
		anomalies = append(anomalies, det.Feed(s)...)
	}
	anomalies = append(anomalies, det.Flush()...)

	perHost := map[uint16]int{}
	for _, a := range anomalies {
		perHost[a.Host]++
	}
	fmt.Printf("\ndetected %d anomalies; per node: %v (fault was on node 3)\n", len(anomalies), perHost)
	if perHost[3] == 0 {
		return fmt.Errorf("fault not localized to node 3")
	}
	for _, a := range anomalies {
		if a.Host == 3 && a.NewSignature {
			fmt.Printf("\n%v\n", a)
			break
		}
	}

	// A central deployment would normally append these to a file with the
	// analyzer's -events flag; here the JSONL goes to stdout.
	fmt.Println("\nanomaly event log (JSONL):")
	events := saad.NewEventWriter(os.Stdout, nil, cfg.Window)
	return events.WriteAll(anomalies)
}
