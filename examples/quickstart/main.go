// Quickstart: instrument a tiny staged server with SAAD, train on healthy
// traffic, then watch SAAD flag a fault that never logs an error.
//
// The server has one producer-consumer stage ("Checkout") whose handler
// hits three log points. After training, a "bug" makes tasks terminate
// prematurely — they stop hitting the later log points. No ERROR is ever
// logged, yet SAAD reports a flow anomaly with the offending execution
// flow, because the task signature {received} was never seen in training.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"saad"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

// clock is a deterministic virtual clock so the demo behaves identically on
// any machine.
type clock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(200 * time.Microsecond)
	return c.now
}

func (c *clock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func run() error {
	cfg := saad.DefaultAnalyzerConfig()
	cfg.Window = time.Second
	// WithMetricsAddr serves Prometheus /metrics, /debug/vars and pprof
	// while the monitor runs; ":0" picks an ephemeral port.
	mon, err := saad.NewMonitor(saad.WithAnalyzerConfig(cfg), saad.WithMetricsAddr("127.0.0.1:0"))
	if err != nil {
		return err
	}
	defer mon.Close()
	fmt.Printf("metrics at http://%s/metrics while running\n", mon.MetricsAddr())
	clk := &clock{now: time.Date(2026, 1, 1, 9, 0, 0, 0, time.UTC)}

	// Instrumentation pass: register the stage's log points (in a real
	// project cmd/saad-instrument does this from your sources).
	dict := mon.Dictionary()
	stage, err := dict.RegisterStage("Checkout", saad.ProducerConsumer)
	if err != nil {
		return err
	}
	var pts [3]saad.LogPointID
	for i, tpl := range []string{
		"order received",
		"payment authorized",
		"order confirmed. sending receipt",
	} {
		if pts[i], err = dict.RegisterPoint(stage, saad.LevelDebug, tpl); err != nil {
			return err
		}
	}

	// The healthy handler: every task hits all three points.
	healthy, err := mon.NewExecutor("Checkout", 4, 64, clk.Now, func(ctx *saad.StageCtx, _ any) {
		ctx.Log(pts[0])
		ctx.Log(pts[1])
		ctx.Log(pts[2])
	})
	if err != nil {
		return err
	}
	fmt.Println("training on 5000 healthy checkouts...")
	for i := 0; i < 5000; i++ {
		if err := healthy.Submit(i); err != nil {
			return err
		}
	}
	healthy.Close()
	model, err := mon.Train()
	if err != nil {
		return err
	}
	fmt.Printf("model trained on %d task synopses\n\n", model.TrainedOn)

	// The buggy handler: payment hangs, tasks die after the first point.
	// Note: nothing here logs an error.
	clk.Advance(2 * time.Second)
	buggy, err := mon.NewExecutor("Checkout", 4, 64, clk.Now, func(ctx *saad.StageCtx, _ any) {
		ctx.Log(pts[0])
	})
	if err != nil {
		return err
	}
	fmt.Println("serving 200 checkouts through the buggy build...")
	for i := 0; i < 200; i++ {
		if err := buggy.Submit(i); err != nil {
			return err
		}
	}
	buggy.Close()
	clk.Advance(3 * time.Second) // let the detection window close

	anomalies, err := mon.Flush()
	if err != nil {
		return err
	}
	if len(anomalies) == 0 {
		return fmt.Errorf("no anomaly detected (unexpected)")
	}
	fmt.Printf("\nSAAD detected %d anomalies:\n\n", len(anomalies))
	for _, a := range anomalies {
		fmt.Println(saad.FormatAnomaly(a, dict))
		fmt.Println()
	}

	// The same anomalies in machine-readable JSONL form, and a peek at the
	// monitor's self-observability counters.
	fmt.Println("JSONL event log form:")
	events := saad.NewEventWriter(os.Stdout, dict, cfg.Window)
	if err := events.WriteAll(anomalies); err != nil {
		return err
	}
	snap := mon.MetricsSnapshot()
	fmt.Printf("\npipeline metrics: %d tasks tracked, %d log-point hits, %d synopses fed, %d windows closed\n",
		snap.Counter("saad_tracker_tasks_ended_total"),
		snap.Counter("saad_tracker_log_point_hits_total"),
		snap.Counter("saad_analyzer_synopses_fed_total"),
		snap.Counter("saad_analyzer_windows_closed_total"))
	return nil
}
