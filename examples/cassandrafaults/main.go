// Cassandra fault injection — the paper's Section 5.4 headline scenario.
//
// A 4-node Cassandra cluster serves a write-heavy YCSB-style workload. At
// minute 10 an error fault hits 1% of WAL appends on host 4; at minute 30
// it hits 100% of them. The fault leaves a writer stuck holding the
// memtable freeze: tasks in stage Table terminate prematurely with the
// signature of Table 1, which log-grep monitoring cannot see (the frozen
// message is not an error). SAAD pinpoints the stage in real time; the node
// finally dies of memory pressure around minute 44.
//
// Run with: go run ./examples/cassandrafaults
package main

import (
	"fmt"
	"os"

	"saad/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cassandrafaults:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := experiments.Config{} // paper defaults, compressed timeline

	fmt.Println("=== Table 1: the frozen-MemTable flow ===")
	t1, err := experiments.Table1(cfg)
	if err != nil {
		return err
	}
	fmt.Println(t1.String())

	fmt.Println("=== Figure 9(a): error on appending to WAL, host 4 ===")
	res, dict, err := experiments.Fig9(cfg, experiments.Fig9ErrorWAL)
	if err != nil {
		return err
	}
	fmt.Println(res.String())

	// The paper's contrast: conventional monitoring vs SAAD.
	fmt.Printf("log-grep alerting saw %d error messages (first at minute %d of 50);\n",
		res.ErrorLogCount, firstMinute(res.ErrorLogMinutes))
	fmt.Printf("SAAD raised %d flow + %d performance anomalies, starting with the fault at minute 10.\n",
		res.FlowCount, res.PerfCount)
	_ = dict
	return nil
}

func firstMinute(minutes []int) int {
	if len(minutes) == 0 {
		return -1
	}
	first := minutes[0]
	for _, m := range minutes {
		if m < first {
			first = m
		}
	}
	return first
}
