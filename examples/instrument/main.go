// Instrumentation demo — the static pass of paper Section 4.1.1.
//
// The instrumenter parses Go source, assigns every log statement a unique
// log-point id, derives the stage from the enclosing method's receiver
// (the Go analogue of the paper's Runnable.run stage entry points), builds
// the log template dictionary, and rewrites the source so each log call is
// preceded by a tracker hit.
//
// Run with: go run ./examples/instrument
package main

import (
	"fmt"
	"os"

	"saad/internal/instrument"
)

// sampleSource is the simplified HDFS DataXceiver of the paper's Figure 3.
const sampleSource = `package datanode

import "log"

type DataXceiver struct{ blockID int64 }

func (d *DataXceiver) Run(packets [][]byte) {
	log.Printf("Receiving block blk_%d", d.blockID)
	for _, pkt := range packets {
		log.Printf("Receiving one packet for blk_%d", d.blockID)
		if len(pkt) == 0 {
			log.Printf("Receiving empty packet for blk_%d", d.blockID)
			continue
		}
		log.Printf("WriteTo blockfile of size %d", len(pkt))
	}
	log.Println("Closing down.")
}
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "instrument:", err)
		os.Exit(1)
	}
}

func run() error {
	res, err := instrument.Run(
		[]instrument.File{{Name: "dataxceiver.go", Src: []byte(sampleSource)}},
		instrument.Options{HitPackage: "saadlog"},
	)
	if err != nil {
		return err
	}

	fmt.Printf("found %d log points in %d stages\n\n", len(res.Sites), res.Dictionary.NumStages())
	fmt.Println("log template dictionary:")
	for _, site := range res.Sites {
		fmt.Printf("  L%d  stage=%-12s level=%-5s template=%q (%s:%d)\n",
			site.ID, site.Stage, site.Level, site.Template, site.File, site.Line)
	}

	fmt.Println("\nrewritten source (saadlog.Hit(id) precedes each log call):")
	fmt.Println(string(res.Rewritten["dataxceiver.go"]))

	fmt.Println("dictionary JSON (for cmd/saad-analyzer -dict):")
	if _, err := res.Dictionary.WriteTo(os.Stdout); err != nil {
		return err
	}
	return nil
}
