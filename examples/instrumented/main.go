// Instrumented-source demo — the full loop of paper Section 4.1.1 running
// against a committed dictionary: dataxceiver.go was rewritten once by
//
//	go run ./cmd/saad-instrument -dict examples/instrumented/saad-dict.json \
//	    -hitpkg saadlog -write examples/instrumented
//
// and both the rewritten source and the dictionary are committed. Each log
// statement reports its pre-assigned log-point id to the task execution
// tracker through the saadlog shim; ending the task emits a synopsis whose
// frequency vector this program prints back through the dictionary.
//
// `saad-vet` (logpointcheck) machine-checks the committed pair on every
// run: unique ids, ids known to the dictionary, templates unchanged.
//
// Run with: go run ./examples/instrumented
package main

import (
	"bytes"
	_ "embed"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"saad/examples/instrumented/saadlog"
	"saad/internal/logpoint"
	"saad/internal/stream"
	"saad/internal/tracker"
)

//go:embed saad-dict.json
var dictJSON []byte

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "instrumented:", err)
		os.Exit(1)
	}
}

func run() error {
	dict, err := logpoint.ReadDictionary(bytes.NewReader(dictJSON))
	if err != nil {
		return err
	}
	stageID, ok := dict.StageByName("DataXceiver")
	if !ok {
		return fmt.Errorf("dictionary has no DataXceiver stage")
	}

	ch := stream.NewChannel(16)
	tr := tracker.New(1, ch)

	// One task per block, dispatcher-worker style. The demo silences the
	// actual log output — SAAD's point is that the synopsis carries the
	// signal, not the log text.
	log.SetOutput(io.Discard)
	start := time.Now()
	task := tr.Begin(stageID, start)
	saadlog.Bind(task, time.Now)
	d := &DataXceiver{blockID: 42}
	d.Run([][]byte{{1, 2, 3}, {}, {4, 5}, nil, {6}})
	task.End(time.Now())
	log.SetOutput(os.Stderr)

	for _, s := range ch.Drain() {
		fmt.Printf("synopsis: stage=%s host=%d task=%d points=%d\n",
			dict.StageName(s.Stage), s.Host, s.TaskID, len(s.Points))
		for _, pc := range s.Points {
			p, err := dict.Point(pc.Point)
			if err != nil {
				return err
			}
			fmt.Printf("  L%-3d x%-3d [%s] %q\n", pc.Point, pc.Count, p.Level, p.Template)
		}
	}
	return nil
}
