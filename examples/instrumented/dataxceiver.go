// The simplified HDFS DataXceiver of the paper's Figure 3, carrying the
// instrumentation cmd/saad-instrument inserted. The //saad:instrumented
// directive below declares the committed dictionary this file's log-point
// ids were assigned from; `saad-vet` (logpointcheck) verifies on every CI
// run that the ids are unique, known to the dictionary, and that no
// template has drifted since assignment.
//
//saad:instrumented dict=saad-dict.json hitpkg=saadlog logger=log

package main

import (
	"log"

	"saad/examples/instrumented/saadlog"
)

// DataXceiver streams the packets of one block to disk, one task per
// block (dispatcher-worker staging: each Run is one tracked task).
type DataXceiver struct{ blockID int64 }

// Run receives every packet of the block and writes it to the block file.
func (d *DataXceiver) Run(packets [][]byte) {
	saadlog.Hit(1)
	log.Printf("Receiving block blk_%d", d.blockID)
	for _, pkt := range packets {
		saadlog.Hit(2)
		log.Printf("Receiving one packet for blk_%d", d.blockID)
		if len(pkt) == 0 {
			saadlog.Hit(3)
			log.Printf("Receiving empty packet for blk_%d", d.blockID)
			continue
		}
		saadlog.Hit(4)
		log.Printf("WriteTo blockfile of size %d", len(pkt))
	}
	saadlog.Hit(5)
	log.Println("Closing down.")
}
