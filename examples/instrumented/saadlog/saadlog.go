// Package saadlog is the logging shim that instrumented sources import:
// cmd/saad-instrument rewrites every log statement to be preceded by
// saadlog.Hit(<id>), and Hit forwards the log-point encounter to the task
// execution tracker (paper Section 4.1.1 — the interposed logging library
// reporting to the tracker).
//
// The paper's Java implementation finds the current task in thread-local
// storage. This example shim binds one task explicitly, which is all a
// single-goroutine demo needs; the simulated storage systems under
// internal/storage carry *tracker.Task handles through their stage
// runtimes instead, which is the idiomatic Go shape.
package saadlog

import (
	"time"

	"saad/internal/logpoint"
	"saad/internal/tracker"
)

var (
	current *tracker.Task
	now     func() time.Time = time.Now
)

// Bind routes subsequent Hit calls to task, timestamped by clock.
func Bind(task *tracker.Task, clock func() time.Time) {
	current = task
	if clock != nil {
		now = clock
	}
}

// Hit reports one encounter of the log point with the given pre-assigned
// id. It is what rewritten log statements call; a nil bound task makes it
// a no-op, so uninstrumented runs pay nothing.
func Hit(id int) {
	current.Hit(logpoint.ID(id), now())
}
