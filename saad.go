// Package saad is Stage-Aware Anomaly Detection: a low-overhead real-time
// anomaly detector for staged, multi-threaded servers, reproducing
// Ghanbari, Hashemi and Amza, "Stage-Aware Anomaly Detection through
// Tracking Log Points" (Middleware 2014).
//
// SAAD treats every log statement as a tracepoint. A thin task execution
// tracker sits between server code and the logger, records which log
// points each task (one runtime execution of a stage) encounters and for
// how long, and emits a few-tens-of-bytes synopsis per task. A statistical
// analyzer clusters synopses by (stage, signature) — the signature is the
// set of distinct log points hit — learns which flows and durations are
// normal from a fault-free trace, and at runtime flags stages whose
// proportion of rare flows or slow tasks is statistically significant
// (one-sided proportion test, significance 0.001).
//
// The package re-exports the building blocks (dictionary, tracker, stage
// runtime, analyzer, transports) and offers the Monitor convenience type
// that wires them together for a single process; see examples/quickstart.
package saad

import (
	"io"
	"time"

	"saad/internal/analyzer"
	"saad/internal/lifecycle"
	"saad/internal/logpoint"
	"saad/internal/metrics"
	"saad/internal/report"
	"saad/internal/stage"
	"saad/internal/stream"
	"saad/internal/synopsis"
	"saad/internal/tracker"
)

// Core types re-exported from the implementation packages.
type (
	// Dictionary is the log-point and stage dictionary produced by the
	// instrumentation pass.
	Dictionary = logpoint.Dictionary
	// LogPoint describes one registered log statement.
	LogPoint = logpoint.Point
	// LogPointID identifies a log statement.
	LogPointID = logpoint.ID
	// StageID identifies a stage.
	StageID = logpoint.StageID
	// Level is a log verbosity level.
	Level = logpoint.Level
	// StagingModel distinguishes producer-consumer from dispatcher-worker
	// stages.
	StagingModel = logpoint.StagingModel

	// Synopsis is the per-task execution summary.
	Synopsis = synopsis.Synopsis
	// Signature is the canonical set of distinct log points a task hit.
	Signature = synopsis.Signature

	// Tracker is the task execution tracker.
	Tracker = tracker.Tracker
	// Task is one tracked task.
	Task = tracker.Task
	// Sink consumes synopses.
	Sink = tracker.Sink
	// SinkFunc adapts a function to Sink.
	SinkFunc = tracker.SinkFunc

	// AnalyzerConfig holds the statistical knobs (percentile thresholds,
	// significance, k-fold settings, window).
	AnalyzerConfig = analyzer.Config
	// Model is the trained outlier model.
	Model = analyzer.Model
	// Detector is the windowed online anomaly detector.
	Detector = analyzer.Detector
	// Engine is the sharded concurrent analyzer: it fans synopses out
	// across shard workers by (host, stage) with detection semantics
	// bit-identical to a single Detector.
	Engine = analyzer.Engine
	// EngineOption configures NewEngine (shard count, queue size,
	// anomaly sink).
	EngineOption = analyzer.EngineOption
	// ShardStat is one engine shard's live load snapshot.
	ShardStat = analyzer.ShardStat
	// Anomaly is one detected flow or performance anomaly.
	Anomaly = analyzer.Anomaly
	// AnomalyKind is flow or performance.
	AnomalyKind = analyzer.AnomalyKind
	// AlarmFilter de-bounces isolated single-window alarms (the
	// false-positive suppression extension of paper Section 5.6).
	AlarmFilter = analyzer.AlarmFilter

	// ModelStore is the versioned on-disk model store of the adaptive
	// model lifecycle: atomic writes, monotonically increasing versions,
	// parent lineage.
	ModelStore = lifecycle.Store
	// ModelMeta describes one stored model version.
	ModelMeta = lifecycle.Meta
	// DriftMonitor watches the live synopsis stream for model drift
	// (never-seen signature rate, per-stage duration-distribution shift).
	DriftMonitor = lifecycle.DriftMonitor
	// DriftReport is one drift evaluation epoch's outcome.
	DriftReport = lifecycle.DriftReport
	// Shadow runs a candidate model side-by-side with the serving model.
	Shadow = lifecycle.Shadow
	// ShadowVerdict is a shadow evaluation's promotion decision.
	ShadowVerdict = lifecycle.Verdict
	// LifecycleManager closes the train → serve → drift → retrain loop
	// around an engine: retrain buffer, drift monitor, shadow evaluation
	// and hot swap.
	LifecycleManager = lifecycle.Manager

	// Executor is the producer-consumer stage runtime.
	Executor = stage.Executor
	// Spawner is the dispatcher-worker stage runtime.
	Spawner = stage.Spawner
	// StageCtx is the per-task context handed to stage handlers.
	StageCtx = stage.Ctx
	// StageHandler processes one request inside a stage.
	StageHandler = stage.Handler

	// MetricsRegistry holds the self-observability counters, gauges and
	// histograms; see internal/metrics.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a point-in-time copy of every registered metric.
	MetricsSnapshot = metrics.Snapshot

	// AnomalyEvent is the JSONL (one JSON object per line) form of an
	// anomaly written by EventWriter.
	AnomalyEvent = report.AnomalyEvent
	// EventWriter streams anomalies as JSONL for machine consumption.
	EventWriter = report.EventWriter

	// StreamClientOption customizes DialAnalyzer (timeouts, metrics,
	// reconnect behaviour).
	StreamClientOption = stream.ClientOption
	// ReconnectConfig tunes the self-healing transport enabled by
	// WithReconnect: backoff schedule and spill-ring capacity.
	ReconnectConfig = stream.ReconnectConfig
)

// Log levels (log4j-compatible).
const (
	LevelDebug = logpoint.LevelDebug
	LevelInfo  = logpoint.LevelInfo
	LevelWarn  = logpoint.LevelWarn
	LevelError = logpoint.LevelError
)

// Staging models.
const (
	ProducerConsumer = logpoint.ProducerConsumer
	DispatcherWorker = logpoint.DispatcherWorker
)

// Anomaly kinds.
const (
	FlowAnomaly        = analyzer.FlowAnomaly
	PerformanceAnomaly = analyzer.PerformanceAnomaly
)

// NewDictionary returns an empty log-point/stage dictionary.
func NewDictionary() *Dictionary { return logpoint.NewDictionary() }

// ReadDictionary parses a dictionary written with Dictionary.WriteTo.
func ReadDictionary(r io.Reader) (*Dictionary, error) { return logpoint.ReadDictionary(r) }

// NewTracker returns an enabled tracker stamping synopses with host.
func NewTracker(host uint16, sink Sink) *Tracker { return tracker.New(host, sink) }

// DefaultAnalyzerConfig returns the paper's analyzer settings: 99th
// percentile outlier thresholds, significance 0.001, 5-fold
// cross-validation, 1-minute windows.
func DefaultAnalyzerConfig() AnalyzerConfig { return analyzer.DefaultConfig() }

// Train builds the outlier model from a fault-free training trace.
func Train(cfg AnalyzerConfig, trace []*Synopsis) (*Model, error) {
	return analyzer.Train(cfg, trace)
}

// ReadModel parses a model written with Model.WriteTo.
func ReadModel(r io.Reader) (*Model, error) { return analyzer.ReadModel(r) }

// NewDetector returns an online detector for the trained model.
func NewDetector(m *Model) *Detector { return analyzer.NewDetector(m) }

// ReadCheckpoint rebuilds a detector — model plus live window state — from
// a checkpoint written with Detector.WriteCheckpoint.
func ReadCheckpoint(r io.Reader) (*Detector, error) { return analyzer.ReadCheckpoint(r) }

// LoadCheckpointFile rebuilds a detector from a checkpoint file written
// atomically by Detector.WriteCheckpointFile.
func LoadCheckpointFile(path string) (*Detector, error) { return analyzer.LoadCheckpointFile(path) }

// NewEngine returns a running sharded analyzer engine for the trained
// model; it implements Sink, so it can terminate a synopsis transport
// directly. See WithShards, WithAnomalySink.
func NewEngine(m *Model, opts ...EngineOption) *Engine { return analyzer.NewEngine(m, opts...) }

// WithShards sets the engine's shard worker count; n < 1 selects
// GOMAXPROCS.
func WithShards(n int) EngineOption { return analyzer.WithShards(n) }

// WithAnomalySink delivers every anomaly batch to fn as windows close,
// called from shard worker goroutines (fn must be safe for concurrent
// use).
func WithAnomalySink(fn func([]Anomaly)) EngineOption { return analyzer.WithAnomalySink(fn) }

// NewEngineFromDetector lifts a detector (typically restored from a
// checkpoint) into a running engine, partitioning its window state across
// shards.
func NewEngineFromDetector(d *Detector, opts ...EngineOption) *Engine {
	return analyzer.NewEngineFromDetector(d, opts...)
}

// ReadEngineCheckpoint rebuilds a running engine from any checkpoint
// written by Detector.WriteCheckpoint or Engine.WriteCheckpoint (the
// formats are identical).
func ReadEngineCheckpoint(r io.Reader, opts ...EngineOption) (*Engine, error) {
	return analyzer.ReadEngineCheckpoint(r, opts...)
}

// LoadEngineCheckpointFile rebuilds a running engine from a checkpoint
// file.
func LoadEngineCheckpointFile(path string, opts ...EngineOption) (*Engine, error) {
	return analyzer.LoadEngineCheckpointFile(path, opts...)
}

// OpenModelStore opens (creating if needed) a versioned model store at
// dir; see Monitor's WithModelStore for the integrated flow.
func OpenModelStore(dir string) (*ModelStore, error) { return lifecycle.Open(dir) }

// NewDriftMonitor watches a live synopsis stream for drift away from the
// serving model.
func NewDriftMonitor(m *Model, cfg lifecycle.DriftConfig) *DriftMonitor {
	return lifecycle.NewDriftMonitor(m, cfg)
}

// NewShadow starts a shadow evaluation of candidate against serving.
func NewShadow(serving, candidate *Model, cfg lifecycle.ShadowConfig) *Shadow {
	return lifecycle.NewShadow(serving, candidate, cfg)
}

// NewAlarmFilter returns an anomaly de-bouncer: anomalies pass only when
// the same (host, stage, kind) group alarmed in minWindows of the last
// span windows.
func NewAlarmFilter(minWindows, span int, window time.Duration) *AlarmFilter {
	return analyzer.NewAlarmFilter(minWindows, span, window)
}

// NewExecutor starts a producer-consumer stage with the given worker pool.
func NewExecutor(dict *Dictionary, tr *Tracker, name string, workers, queueCap int, now func() time.Time, handler StageHandler) (*Executor, error) {
	return stage.NewExecutor(dict, tr, name, workers, queueCap, now, handler)
}

// NewSpawner returns a dispatcher-worker stage.
func NewSpawner(dict *Dictionary, tr *Tracker, name string, now func() time.Time) (*Spawner, error) {
	return stage.NewSpawner(dict, tr, name, now)
}

// NewChannelSink returns an in-process buffered synopsis transport.
func NewChannelSink(capacity int) *stream.Channel { return stream.NewChannel(capacity) }

// DialAnalyzer connects a synopsis stream to a remote analyzer (see
// cmd/saad-analyzer). flushEvery bounds buffering latency. With
// WithReconnect the client survives analyzer outages: it spills synopses to
// a bounded in-memory ring and replays them after redialling with backoff.
func DialAnalyzer(addr string, flushEvery time.Duration, opts ...StreamClientOption) (*stream.Client, error) {
	return stream.Dial(addr, flushEvery, opts...)
}

// WithReconnect makes DialAnalyzer self-healing: the client redials with
// capped exponential backoff + jitter and buffers synopses in a bounded
// spill ring (drop-oldest) across outages. The zero ReconnectConfig selects
// the documented defaults.
func WithReconnect(cfg ReconnectConfig) StreamClientOption { return stream.WithReconnect(cfg) }

// WithDialTimeout bounds each connection attempt of DialAnalyzer.
func WithDialTimeout(d time.Duration) StreamClientOption { return stream.WithDialTimeout(d) }

// WithWriteTimeout bounds each synopsis flush of DialAnalyzer so a stalled
// analyzer cannot block the tracker indefinitely.
func WithWriteTimeout(d time.Duration) StreamClientOption { return stream.WithWriteTimeout(d) }

// ListenSynopses starts a TCP server delivering decoded synopses to sink.
func ListenSynopses(addr string, sink Sink) (*stream.Server, error) {
	return stream.Listen(addr, sink)
}

// FormatAnomaly renders an anomaly with stage names and log templates for
// root-cause inspection.
func FormatAnomaly(a Anomaly, dict *Dictionary) string {
	return report.FormatAnomaly(a, dict)
}

// NewEventWriter returns a writer emitting one self-describing JSON object
// per anomaly to w (JSONL). dict may be nil; window sizes window_end.
func NewEventWriter(w io.Writer, dict *Dictionary, window time.Duration) *EventWriter {
	return report.NewEventWriter(w, dict, window)
}

// ReadAnomalyEvents parses a JSONL anomaly event stream written by
// EventWriter.
func ReadAnomalyEvents(r io.Reader) ([]AnomalyEvent, error) {
	return report.ReadEvents(r)
}
