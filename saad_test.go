package saad_test

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"saad"
)

// fakeClock is a mutex-protected monotonically advancing clock for
// deterministic durations in tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(100 * time.Microsecond)
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// buildStage registers a stage with three log points and returns them.
func buildStage(t *testing.T, dict *saad.Dictionary, name string) (saad.StageID, []saad.LogPointID) {
	t.Helper()
	sid, err := dict.RegisterStage(name, saad.ProducerConsumer)
	if err != nil {
		t.Fatal(err)
	}
	var ids []saad.LogPointID
	for _, tpl := range []string{"request received", "slow path taken", "request done"} {
		id, err := dict.RegisterPoint(sid, saad.LevelDebug, tpl)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return sid, ids
}

func TestMonitorEndToEnd(t *testing.T) {
	cfg := saad.DefaultAnalyzerConfig()
	cfg.Window = time.Second
	cfg.MinTasksPerSignature = 10
	mon, err := saad.NewMonitor(saad.WithAnalyzerConfig(cfg), saad.WithHost(3))
	if err != nil {
		t.Fatal(err)
	}
	clock := newFakeClock()
	_, pts := buildStage(t, mon.Dictionary(), "Handler")

	ex, err := mon.NewExecutor("Handler", 2, 16, clock.Now, func(ctx *saad.StageCtx, req any) {
		ctx.Log(pts[0])
		if req.(bool) { // rare slow path
			ctx.Log(pts[1])
		}
		ctx.Log(pts[2])
	})
	if err != nil {
		t.Fatal(err)
	}

	// Training: 2000 normal tasks, a handful of slow-path tasks.
	for i := 0; i < 2000; i++ {
		if err := ex.Submit(i%200 == 0); err != nil {
			t.Fatal(err)
		}
		if i%100 == 0 {
			if _, err := mon.PollTraining(); err != nil {
				t.Fatal(err)
			}
		}
	}
	ex.Close()

	if _, err := mon.Poll(); !errors.Is(err, saad.ErrNotDetecting) {
		t.Fatalf("Poll before Train err = %v", err)
	}
	model, err := mon.Train()
	if err != nil {
		t.Fatal(err)
	}
	if model == nil || mon.Model() != model {
		t.Fatal("model accessor mismatch")
	}
	if _, err := mon.PollTraining(); !errors.Is(err, saad.ErrNotTraining) {
		t.Fatalf("PollTraining after Train err = %v", err)
	}

	// Detection: a stage suddenly taking the never-seen premature flow.
	ex2, err := mon.NewExecutor("Handler", 2, 16, clock.Now, func(ctx *saad.StageCtx, req any) {
		ctx.Log(pts[0]) // premature termination: only the first point
	})
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Second) // move into a fresh window
	for i := 0; i < 100; i++ {
		if err := ex2.Submit(false); err != nil {
			t.Fatal(err)
		}
	}
	ex2.Close()
	clock.Advance(5 * time.Second)

	if _, err := mon.Poll(); err != nil {
		t.Fatal(err)
	}
	anomalies, err := mon.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(anomalies) == 0 {
		t.Fatal("premature flow not detected")
	}
	found := false
	for _, a := range anomalies {
		if a.Kind == saad.FlowAnomaly && a.NewSignature {
			found = true
			text := saad.FormatAnomaly(a, mon.Dictionary())
			if !strings.Contains(text, "Handler") || !strings.Contains(text, "request received") {
				t.Fatalf("report missing context:\n%s", text)
			}
		}
	}
	if !found {
		t.Fatalf("no new-signature flow anomaly among %d anomalies", len(anomalies))
	}
	if mon.Dropped() != 0 {
		t.Fatalf("dropped = %d", mon.Dropped())
	}
}

func TestMonitorSetModelAndSerialization(t *testing.T) {
	cfg := saad.DefaultAnalyzerConfig()
	cfg.MinTasksPerSignature = 5
	mon, err := saad.NewMonitor(saad.WithAnalyzerConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	clock := newFakeClock()
	_, pts := buildStage(t, mon.Dictionary(), "S")
	ex, err := mon.NewExecutor("S", 1, 8, clock.Now, func(ctx *saad.StageCtx, _ any) {
		ctx.Log(pts[0])
		ctx.Log(pts[2])
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := ex.Submit(i); err != nil {
			t.Fatal(err)
		}
	}
	ex.Close()
	model, err := mon.Train()
	if err != nil {
		t.Fatal(err)
	}

	// Round-trip the model and the dictionary through their wire formats.
	var modelBuf, dictBuf bytes.Buffer
	if _, err := model.WriteTo(&modelBuf); err != nil {
		t.Fatal(err)
	}
	if _, err := mon.Dictionary().WriteTo(&dictBuf); err != nil {
		t.Fatal(err)
	}
	loadedModel, err := saad.ReadModel(&modelBuf)
	if err != nil {
		t.Fatal(err)
	}
	loadedDict, err := saad.ReadDictionary(&dictBuf)
	if err != nil {
		t.Fatal(err)
	}
	if loadedDict.NumPoints() != mon.Dictionary().NumPoints() {
		t.Fatal("dictionary round trip lost points")
	}

	mon2, err := saad.NewMonitor()
	if err != nil {
		t.Fatal(err)
	}
	mon2.SetModel(loadedModel)
	if _, err := mon2.Poll(); err != nil {
		t.Fatalf("Poll with installed model: %v", err)
	}
}

// TestMonitorEngineMode runs the end-to-end monitor flow on the sharded
// engine backend and checks it reports the same class of anomaly the
// in-line detector does.
func TestMonitorEngineMode(t *testing.T) {
	cfg := saad.DefaultAnalyzerConfig()
	cfg.Window = time.Second
	cfg.MinTasksPerSignature = 10
	mon, err := saad.NewMonitor(saad.WithAnalyzerConfig(cfg), saad.WithHost(3), saad.WithEngineShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	clock := newFakeClock()
	_, pts := buildStage(t, mon.Dictionary(), "Handler")

	ex, err := mon.NewExecutor("Handler", 2, 16, clock.Now, func(ctx *saad.StageCtx, req any) {
		ctx.Log(pts[0])
		ctx.Log(pts[2])
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := ex.Submit(i); err != nil {
			t.Fatal(err)
		}
		if i%100 == 0 {
			if _, err := mon.PollTraining(); err != nil {
				t.Fatal(err)
			}
		}
	}
	ex.Close()
	if _, err := mon.Train(); err != nil {
		t.Fatal(err)
	}

	// Detection: premature termination, a flow unseen in training.
	ex2, err := mon.NewExecutor("Handler", 2, 16, clock.Now, func(ctx *saad.StageCtx, req any) {
		ctx.Log(pts[0])
	})
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Second)
	for i := 0; i < 100; i++ {
		if err := ex2.Submit(false); err != nil {
			t.Fatal(err)
		}
	}
	ex2.Close()
	clock.Advance(5 * time.Second)

	if _, err := mon.Poll(); err != nil {
		t.Fatal(err)
	}
	anomalies, err := mon.Flush()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range anomalies {
		if a.Kind == saad.FlowAnomaly && a.NewSignature {
			found = true
		}
	}
	if !found {
		t.Fatalf("no new-signature flow anomaly among %d anomalies", len(anomalies))
	}
	// Flush after Close must not panic (the engine runs inline once closed).
	if err := mon.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := mon.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestMonitorOverTCPTransport(t *testing.T) {
	// Tracker on one side, analyzer sink on the other, over real TCP.
	got := saad.NewChannelSink(1 << 12)
	srv, err := saad.ListenSynopses("127.0.0.1:0", got)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := saad.DialAnalyzer(srv.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tr := saad.NewTracker(9, cli)
	clock := newFakeClock()
	task := tr.Begin(1, clock.Now())
	task.Hit(1, clock.Now())
	task.End(clock.Now())
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}

	deadline := time.After(5 * time.Second)
	select {
	case s := <-got.C():
		if s.Host != 9 {
			t.Fatalf("host = %d", s.Host)
		}
	case <-deadline:
		t.Fatal("synopsis never arrived over TCP")
	}
}
