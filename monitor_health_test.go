package saad_test

import (
	"net/http"
	"testing"
	"time"

	"saad"
)

// TestMonitorHealthAndReadiness: /healthz is live from the start; /readyz
// turns 200 only once a model is trained and the monitor is detecting.
func TestMonitorHealthAndReadiness(t *testing.T) {
	cfg := saad.DefaultAnalyzerConfig()
	cfg.Window = time.Second
	cfg.MinTasksPerSignature = 10
	mon, err := saad.NewMonitor(saad.WithAnalyzerConfig(cfg), saad.WithMetricsAddr("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()

	probe := func(path string) int {
		t.Helper()
		resp, err := http.Get("http://" + mon.MetricsAddr() + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := probe("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz while training = %d, want 200", got)
	}
	if got := probe("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while training = %d, want 503", got)
	}

	clock := newFakeClock()
	_, pts := buildStage(t, mon.Dictionary(), "Handler")
	ex, err := mon.NewExecutor("Handler", 2, 16, clock.Now, func(ctx *saad.StageCtx, _ any) {
		ctx.Log(pts[0])
		ctx.Log(pts[2])
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := ex.Submit(i); err != nil {
			t.Fatal(err)
		}
	}
	ex.Close()
	if _, err := mon.Train(); err != nil {
		t.Fatal(err)
	}

	if got := probe("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz while detecting = %d, want 200", got)
	}
	if got := probe("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz after Train = %d, want 200", got)
	}
}
